// Strong identifier types.
//
// Routers, interfaces and links are referenced by small dense indices
// everywhere in the library. Wrapping them in distinct types prevents the
// classic "passed a router id where a link id was expected" bug at compile
// time while keeping the zero-overhead of a plain integer.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

namespace netfail {

/// CRTP-free strong-typedef over a 32-bit index. `Tag` makes instantiations
/// distinct types.
template <typename Tag>
class Id {
 public:
  using underlying_type = std::uint32_t;
  static constexpr underlying_type kInvalid = 0xffffffffu;

  constexpr Id() = default;
  explicit constexpr Id(underlying_type v) : v_(v) {}

  static constexpr Id invalid() { return Id{}; }
  constexpr bool valid() const { return v_ != kInvalid; }
  constexpr underlying_type value() const { return v_; }
  /// Convenience for indexing into vectors.
  constexpr std::size_t index() const { return v_; }

  constexpr auto operator<=>(const Id&) const = default;

  std::string to_string() const {
    return valid() ? std::to_string(v_) : std::string("<invalid>");
  }

 private:
  underlying_type v_ = kInvalid;
};

struct RouterTag {};
struct InterfaceTag {};
struct LinkTag {};
struct AdjacencyGroupTag {};
struct CustomerTag {};
struct TicketTag {};

using RouterId = Id<RouterTag>;
using InterfaceId = Id<InterfaceTag>;
using LinkId = Id<LinkTag>;
/// Identifies a set of parallel physical links between one router pair
/// (a multi-link adjacency).
using AdjacencyGroupId = Id<AdjacencyGroupTag>;
using CustomerId = Id<CustomerTag>;
using TicketId = Id<TicketTag>;

}  // namespace netfail

namespace std {
template <typename Tag>
struct hash<netfail::Id<Tag>> {
  size_t operator()(const netfail::Id<Tag>& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value());
  }
};
}  // namespace std
