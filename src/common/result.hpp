// Result<T>: a minimal expected-like type for recoverable errors.
//
// GCC 12 ships no std::expected, so parsers and decoders in this library
// return Result<T>. Errors carry a category and a human-readable message;
// they are values, not exceptions, because malformed input (a truncated LSP,
// a garbled syslog line) is ordinary data in a measurement pipeline, not an
// exceptional condition.
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "src/common/assert.hpp"

namespace netfail {

enum class ErrorCode {
  kInvalidArgument,
  kParseError,
  kTruncated,
  kChecksumMismatch,
  kNotFound,
  kOutOfRange,
  kInternal,
  /// The platform/kernel lacks an optional capability (e.g. SO_REUSEPORT);
  /// callers with a fallback path should treat this as "use the fallback".
  kUnsupported,
};

/// Human-readable name of an ErrorCode ("parse_error", ...).
inline const char* error_code_name(ErrorCode c) {
  switch (c) {
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kParseError: return "parse_error";
    case ErrorCode::kTruncated: return "truncated";
    case ErrorCode::kChecksumMismatch: return "checksum_mismatch";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kOutOfRange: return "out_of_range";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kUnsupported: return "unsupported";
  }
  return "unknown";
}

struct Error {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;

  std::string to_string() const {
    return std::string(error_code_name(code)) + ": " + message;
  }
};

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : v_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Error error) : v_(std::move(error)) {}  // NOLINT: implicit by design

  bool ok() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    NETFAIL_ASSERT(ok(), "Result::value() on error");
    return std::get<T>(v_);
  }
  T& value() & {
    NETFAIL_ASSERT(ok(), "Result::value() on error");
    return std::get<T>(v_);
  }
  T&& value() && {
    NETFAIL_ASSERT(ok(), "Result::value() on error");
    return std::get<T>(std::move(v_));
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  const Error& error() const {
    NETFAIL_ASSERT(!ok(), "Result::error() on value");
    return std::get<Error>(v_);
  }

  /// Value if ok, otherwise `fallback`.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(v_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> v_;
};

/// Specialization-free void result.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(Error error) : error_(std::move(error)), ok_(false) {}  // NOLINT

  static Status ok_status() { return Status{}; }
  bool ok() const { return ok_; }
  explicit operator bool() const { return ok_; }
  const Error& error() const {
    NETFAIL_ASSERT(!ok_, "Status::error() on ok");
    return error_;
  }

 private:
  Error error_;
  bool ok_ = true;
};

inline Error make_error(ErrorCode code, std::string message) {
  return Error{code, std::move(message)};
}

}  // namespace netfail
