#include "src/common/par.hpp"

#include <atomic>
#include <cstdlib>
#include <deque>
#include <exception>

#include "src/common/metrics.hpp"

namespace netfail::par {
namespace {

// Set while a thread is executing chunks of some job; a parallel_for issued
// from such a thread runs inline (nested fork/join would deadlock on the
// pool's single-job submit lock, and the outer loop already owns the
// parallelism).
thread_local bool t_in_parallel_region = false;

thread_local ThreadPool* t_pool_override = nullptr;

struct Chunk {
  std::size_t begin = 0;
  std::size_t end = 0;
};

}  // namespace

/// One fork/join region: the chunk deques (one per participant), the body,
/// and the join state. Kept alive by shared_ptr so a worker that wakes late
/// can still scan it safely after the caller returned.
struct ThreadPool::Job {
  struct Shard {
    sync::Mutex mu;
    std::deque<Chunk> chunks NETFAIL_GUARDED_BY(mu);
  };

  explicit Job(std::size_t shard_count) : shards(shard_count) {}

  const RangeBody* body = nullptr;
  std::deque<Shard> shards;  // deque: Shard is immovable (mutex)

  std::atomic<std::size_t> pending{0};  // chunks whose body has not finished
  sync::Mutex done_mu;  // handshake only: pending is the actual state
  sync::CondVar done_cv;

  std::atomic<bool> failed{false};
  sync::Mutex error_mu;
  std::exception_ptr error NETFAIL_GUARDED_BY(error_mu);
};

std::size_t default_threads() {
  if (const char* env = std::getenv("NETFAIL_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) {
      return v > 256 ? 256 : static_cast<std::size_t>(v);
    }
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

ThreadPool::ThreadPool(std::size_t threads) {
  participants_ = threads == 0 ? default_threads() : threads;
  workers_.reserve(participants_ - 1);
  for (std::size_t i = 1; i < participants_; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    sync::MutexLock lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

ThreadPool& ThreadPool::global() {
  // Leaked so the pointer stays reachable (no LSan report) and workers are
  // never joined during static destruction.
  static ThreadPool* pool = new ThreadPool();  // netfail-lint: allow(naked-new) intentionally leaked process-wide singleton
  return *pool;
}

void ThreadPool::worker_loop(std::size_t shard_index) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      // Explicit wait loop (not a lambda predicate): the analysis cannot see
      // a capability held inside a lambda body.
      sync::UniqueLock lock(mu_);
      while (!stopping_ &&
             (job_ == nullptr || generation_ == seen_generation)) {
        work_cv_.wait(lock);
      }
      if (stopping_) return;
      job = job_;
      seen_generation = generation_;
    }
    t_in_parallel_region = true;
    drain(*job, shard_index);
    t_in_parallel_region = false;
  }
}

void ThreadPool::drain(Job& job, std::size_t home_shard) {
  static metrics::Counter& steals = metrics::global().counter("par.steals");
  const std::size_t shard_count = job.shards.size();
  for (;;) {
    Chunk chunk;
    bool got = false;
    {
      Job::Shard& own = job.shards[home_shard];
      sync::MutexLock lock(own.mu);
      if (!own.chunks.empty()) {
        chunk = own.chunks.back();
        own.chunks.pop_back();
        got = true;
      }
    }
    for (std::size_t off = 1; !got && off < shard_count; ++off) {
      Job::Shard& victim = job.shards[(home_shard + off) % shard_count];
      sync::MutexLock lock(victim.mu);
      if (!victim.chunks.empty()) {
        chunk = victim.chunks.front();
        victim.chunks.pop_front();
        got = true;
        steals.inc();
      }
    }
    if (!got) return;

    if (!job.failed.load(std::memory_order_relaxed)) {
      try {
        (*job.body)(chunk.begin, chunk.end);
      } catch (...) {
        sync::MutexLock lock(job.error_mu);
        if (!job.error) {
          job.error = std::current_exception();
          job.failed.store(true, std::memory_order_relaxed);
        }
      }
    }
    if (job.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      sync::MutexLock lock(job.done_mu);
      job.done_cv.notify_all();
    }
  }
}

void ThreadPool::for_range(std::size_t n, std::size_t grain,
                           const RangeBody& body) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  if (participants_ == 1 || t_in_parallel_region || n <= grain) {
    body(0, n);
    return;
  }

  // Aim for a few chunks per participant so stealing has something to
  // balance, but never chunks smaller than the caller's grain.
  std::size_t chunk_size = (n + 4 * participants_ - 1) / (4 * participants_);
  if (chunk_size < grain) chunk_size = grain;
  const std::size_t chunk_count = (n + chunk_size - 1) / chunk_size;

  sync::MutexLock submit_lock(submit_mu_);
  metrics::global().counter("par.jobs").inc();

  auto job = std::make_shared<Job>(participants_);
  job->body = &body;
  job->pending.store(chunk_count, std::memory_order_relaxed);
  // Contiguous runs of chunks per shard: participant p starts near its own
  // slice of the index space, which keeps per-link merges cache-friendly.
  // No worker has seen the job yet, so its shard deques are ours alone —
  // but lock anyway: the analysis has no "pre-publication" concept, and an
  // uncontended lock costs nothing next to the simulation behind it.
  for (std::size_t c = 0; c < chunk_count; ++c) {
    const std::size_t begin = c * chunk_size;
    const std::size_t end = begin + chunk_size < n ? begin + chunk_size : n;
    Job::Shard& shard = job->shards[c * participants_ / chunk_count];
    sync::MutexLock lock(shard.mu);
    shard.chunks.push_back(Chunk{begin, end});
  }

  {
    sync::MutexLock lock(mu_);
    job_ = job;
    ++generation_;
  }
  work_cv_.notify_all();

  t_in_parallel_region = true;
  drain(*job, 0);
  t_in_parallel_region = false;

  {
    sync::UniqueLock lock(job->done_mu);
    while (job->pending.load(std::memory_order_acquire) != 0) {
      job->done_cv.wait(lock);
    }
  }
  {
    sync::MutexLock lock(mu_);
    if (job_ == job) job_ = nullptr;
  }
  {
    // Workers are done with this job (pending hit 0 with acq_rel ordering),
    // but the analysis still wants the error lock held for the read.
    sync::MutexLock lock(job->error_mu);
    if (job->error) std::rethrow_exception(job->error);
  }
}

ThreadPool& current_pool() {
  return t_pool_override != nullptr ? *t_pool_override : ThreadPool::global();
}

PoolGuard::PoolGuard(ThreadPool* pool) : previous_(t_pool_override) {
  t_pool_override = pool;
}

PoolGuard::~PoolGuard() { t_pool_override = previous_; }

void parallel_for(std::size_t n, std::size_t grain,
                  const ThreadPool::RangeBody& body) {
  current_pool().for_range(n, grain, body);
}

}  // namespace netfail::par
