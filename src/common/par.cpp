#include "src/common/par.hpp"

#include <atomic>
#include <cstdlib>
#include <deque>
#include <exception>

#include "src/common/metrics.hpp"

namespace netfail::par {
namespace {

// Set while a thread is executing chunks of some job; a parallel_for issued
// from such a thread runs inline (nested fork/join would deadlock on the
// pool's single-job submit lock, and the outer loop already owns the
// parallelism).
thread_local bool t_in_parallel_region = false;

thread_local ThreadPool* t_pool_override = nullptr;

struct Chunk {
  std::size_t begin = 0;
  std::size_t end = 0;
};

}  // namespace

/// One fork/join region: the chunk deques (one per participant), the body,
/// and the join state. Kept alive by shared_ptr so a worker that wakes late
/// can still scan it safely after the caller returned.
struct ThreadPool::Job {
  struct Shard {
    std::mutex mu;
    std::deque<Chunk> chunks;
  };

  explicit Job(std::size_t shard_count) : shards(shard_count) {}

  const RangeBody* body = nullptr;
  std::deque<Shard> shards;  // deque: Shard is immovable (mutex)

  std::atomic<std::size_t> pending{0};  // chunks whose body has not finished
  std::mutex done_mu;
  std::condition_variable done_cv;

  std::atomic<bool> failed{false};
  std::mutex error_mu;
  std::exception_ptr error;
};

std::size_t default_threads() {
  if (const char* env = std::getenv("NETFAIL_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1) {
      return v > 256 ? 256 : static_cast<std::size_t>(v);
    }
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

ThreadPool::ThreadPool(std::size_t threads) {
  participants_ = threads == 0 ? default_threads() : threads;
  workers_.reserve(participants_ - 1);
  for (std::size_t i = 1; i < participants_; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

ThreadPool& ThreadPool::global() {
  // Leaked so the pointer stays reachable (no LSan report) and workers are
  // never joined during static destruction.
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

void ThreadPool::worker_loop(std::size_t shard_index) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return stopping_ || (job_ != nullptr && generation_ != seen_generation);
      });
      if (stopping_) return;
      job = job_;
      seen_generation = generation_;
    }
    t_in_parallel_region = true;
    drain(*job, shard_index);
    t_in_parallel_region = false;
  }
}

void ThreadPool::drain(Job& job, std::size_t home_shard) {
  static metrics::Counter& steals = metrics::global().counter("par.steals");
  const std::size_t shard_count = job.shards.size();
  for (;;) {
    Chunk chunk;
    bool got = false;
    {
      Job::Shard& own = job.shards[home_shard];
      std::lock_guard<std::mutex> lock(own.mu);
      if (!own.chunks.empty()) {
        chunk = own.chunks.back();
        own.chunks.pop_back();
        got = true;
      }
    }
    for (std::size_t off = 1; !got && off < shard_count; ++off) {
      Job::Shard& victim = job.shards[(home_shard + off) % shard_count];
      std::lock_guard<std::mutex> lock(victim.mu);
      if (!victim.chunks.empty()) {
        chunk = victim.chunks.front();
        victim.chunks.pop_front();
        got = true;
        steals.inc();
      }
    }
    if (!got) return;

    if (!job.failed.load(std::memory_order_relaxed)) {
      try {
        (*job.body)(chunk.begin, chunk.end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(job.error_mu);
        if (!job.error) {
          job.error = std::current_exception();
          job.failed.store(true, std::memory_order_relaxed);
        }
      }
    }
    if (job.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(job.done_mu);
      job.done_cv.notify_all();
    }
  }
}

void ThreadPool::for_range(std::size_t n, std::size_t grain,
                           const RangeBody& body) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  if (participants_ == 1 || t_in_parallel_region || n <= grain) {
    body(0, n);
    return;
  }

  // Aim for a few chunks per participant so stealing has something to
  // balance, but never chunks smaller than the caller's grain.
  std::size_t chunk_size = (n + 4 * participants_ - 1) / (4 * participants_);
  if (chunk_size < grain) chunk_size = grain;
  const std::size_t chunk_count = (n + chunk_size - 1) / chunk_size;

  std::lock_guard<std::mutex> submit_lock(submit_mu_);
  metrics::global().counter("par.jobs").inc();

  auto job = std::make_shared<Job>(participants_);
  job->body = &body;
  job->pending.store(chunk_count, std::memory_order_relaxed);
  // Contiguous runs of chunks per shard: participant p starts near its own
  // slice of the index space, which keeps per-link merges cache-friendly.
  for (std::size_t c = 0; c < chunk_count; ++c) {
    const std::size_t begin = c * chunk_size;
    const std::size_t end = begin + chunk_size < n ? begin + chunk_size : n;
    job->shards[c * participants_ / chunk_count].chunks.push_back(
        Chunk{begin, end});
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
    ++generation_;
  }
  work_cv_.notify_all();

  t_in_parallel_region = true;
  drain(*job, 0);
  t_in_parallel_region = false;

  {
    std::unique_lock<std::mutex> lock(job->done_mu);
    job->done_cv.wait(lock, [&] {
      return job->pending.load(std::memory_order_acquire) == 0;
    });
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (job_ == job) job_ = nullptr;
  }
  if (job->error) std::rethrow_exception(job->error);
}

ThreadPool& current_pool() {
  return t_pool_override != nullptr ? *t_pool_override : ThreadPool::global();
}

PoolGuard::PoolGuard(ThreadPool* pool) : previous_(t_pool_override) {
  t_pool_override = pool;
}

PoolGuard::~PoolGuard() { t_pool_override = previous_; }

void parallel_for(std::size_t n, std::size_t grain,
                  const ThreadPool::RangeBody& body) {
  current_pool().for_range(n, grain, body);
}

}  // namespace netfail::par
