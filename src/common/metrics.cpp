#include "src/common/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>

namespace netfail::metrics {
namespace {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

// Relaxed CAS helpers: atomic<double> has no fetch_add/fetch_min members we
// can rely on pre-C++26, and relaxed ordering is all a statistics sink needs.
void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  counts_ = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  counts_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  atomic_min(min_, v);
  atomic_max(max_, v);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
}

void Histogram::reset() {
  for (std::atomic<std::uint64_t>& c : counts_) {
    c.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

std::vector<double> exponential_bounds(double first, double factor,
                                       std::size_t n) {
  std::vector<double> bounds;
  bounds.reserve(n);
  double b = first;
  for (std::size_t i = 0; i < n; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

Counter& Registry::counter(const std::string& name) {
  sync::MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  sync::MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> upper_bounds) {
  sync::MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(upper_bounds));
  return *slot;
}

std::string Registry::render_text() const {
  sync::MutexLock lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    out += name;
    out += ' ';
    out += std::to_string(c->value());
    out += '\n';
  }
  for (const auto& [name, g] : gauges_) {
    out += name;
    out += ' ';
    out += std::to_string(g->value());
    out += '\n';
  }
  for (const auto& [name, h] : histograms_) {
    out += name;
    out += " count=" + std::to_string(h->count());
    out += " sum=" + format_double(h->sum());
    out += " min=" + format_double(h->min());
    out += " max=" + format_double(h->max());
    out += " mean=" + format_double(h->mean());
    out += '\n';
    for (std::size_t i = 0; i <= h->bounds().size(); ++i) {
      if (h->bucket_count(i) == 0) continue;
      out += "  le=";
      out += (i < h->bounds().size()) ? format_double(h->bounds()[i]) : "+inf";
      out += ' ';
      out += std::to_string(h->bucket_count(i));
      out += '\n';
    }
  }
  return out;
}

std::string Registry::render_json() const {
  sync::MutexLock lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":" + std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":" + std::to_string(g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    out += '"' + name + "\":{";
    out += "\"count\":" + std::to_string(h->count());
    out += ",\"sum\":" + format_double(h->sum());
    out += ",\"min\":" + format_double(h->min());
    out += ",\"max\":" + format_double(h->max());
    out += ",\"buckets\":[";
    for (std::size_t i = 0; i <= h->bounds().size(); ++i) {
      if (i > 0) out += ',';
      out += "{\"le\":";
      out += (i < h->bounds().size()) ? format_double(h->bounds()[i])
                                      : std::string("\"+inf\"");
      out += ",\"count\":" + std::to_string(h->bucket_count(i)) + '}';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

void Registry::reset() {
  sync::MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

Registry& global() {
  static Registry* r = new Registry;  // netfail-lint: allow(naked-new) leaked: outlives all static users
  return *r;
}

}  // namespace netfail::metrics
