// Lightweight in-process metrics: named counters and fixed-bucket
// histograms, zero dependencies.
//
// The registry is the observability spine of the streaming path (and is
// threaded through the extractors and collector): components grab a counter
// once by name and bump it on the hot path; a snapshot renders every metric
// as text or JSON. Values are cumulative since process start (or the last
// reset()); names are dotted paths like "stream.events.lsp".
//
// Counters and histograms use relaxed atomics so the streaming path and the
// netfail::par parallel pipeline can share one registry without UB; the
// registry itself locks only on first lookup. Histogram snapshots taken
// while writers are active are per-field consistent (each load is atomic)
// but not cross-field consistent — fine for observability, not for
// invariants.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/sync.hpp"
#include "src/common/thread_annotations.hpp"

namespace netfail::metrics {

/// A monotonically increasing integer metric.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A point-in-time signed level (queue depth, active connections): unlike a
/// Counter it goes both ways, and a snapshot shows the *current* level, not
/// a cumulative total. All operations are relaxed atomics, so producers and
/// a consumer on different threads can track one level without a lock.
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  void sub(std::int64_t n = 1) { value_.fetch_sub(n, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  /// set(max(current, v)), for high-water marks shared across threads.
  void set_max(std::int64_t v) {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// A histogram with fixed bucket upper bounds chosen at creation. Buckets
/// are *not* cumulative: counts_[i] holds observations v with
/// bounds_[i-1] < v <= bounds_[i]; one final overflow bucket catches the
/// rest. Also tracks count/sum/min/max for cheap summary lines.
///
/// observe() is safe to call concurrently (bounds are immutable after
/// construction; every mutable field is atomic). Not copyable.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double v);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const { return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed); }
  double max() const { return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed); }
  double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  const std::vector<double>& bounds() const { return bounds_; }
  /// bucket_count(i) for i in [0, bounds().size()]; the last index is the
  /// overflow bucket (v > bounds().back()).
  std::uint64_t bucket_count(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  void reset();

 private:
  std::vector<double> bounds_;                    // sorted ascending
  std::vector<std::atomic<std::uint64_t>> counts_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0};
  std::atomic<double> min_{0};  // +inf sentinel while empty
  std::atomic<double> max_{0};  // -inf sentinel while empty
};

/// Common bucket layouts.
std::vector<double> exponential_bounds(double first, double factor, std::size_t n);

/// Named metric registry. Lookup creates on first use; returned references
/// stay valid for the registry's lifetime, so hot paths should look up once
/// and keep the reference.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Bounds are fixed on first creation; later calls with the same name
  /// return the existing histogram and ignore `upper_bounds`.
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds);

  /// Flat text dump, one metric per line, sorted by name.
  std::string render_text() const;
  /// JSON object {"counters": {...}, "histograms": {...}}.
  std::string render_json() const;

  /// Zero every value, keeping the registered names (tests use this).
  void reset();

 private:
  // The mutex guards the maps only; the Counter/Gauge/Histogram objects the
  // map values point to are internally atomic and are mutated lock-free by
  // their holders after lookup.
  mutable sync::Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      NETFAIL_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      NETFAIL_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      NETFAIL_GUARDED_BY(mu_);
};

/// The process-wide registry the library components report into.
Registry& global();

}  // namespace netfail::metrics
