// netfail::par — a small, dependency-free fork/join thread pool.
//
// The paper's analyses are embarrassingly parallel across links and across
// scenario seeds, so the hot layers (reconstruction, flap detection, the
// per-seed bench sweeps) only need one primitive: a blocking parallel_for
// over an index range. The pool provides it with
//
//   - a fixed worker count chosen once (NETFAIL_THREADS env override,
//     hardware_concurrency fallback);
//   - chunked work-stealing: each participant owns a deque of contiguous
//     index chunks, pops its own from the back and steals from the front of
//     the others, so an unlucky shard (one link with a giant flap history)
//     drains onto idle workers instead of serializing the barrier;
//   - exception propagation: the first exception thrown by the body is
//     rethrown on the calling thread after the join; remaining chunks are
//     skipped;
//   - a serial guarantee: threads() == 1 executes the body inline on the
//     calling thread in index order, with no pool machinery, so a
//     NETFAIL_THREADS=1 run is bit-exact with the pre-pool code path.
//
// Nested calls never deadlock: a parallel_for issued from inside a pool
// worker (e.g. reconstruct() called from a per-seed pipeline fan-out) runs
// inline on that worker. Correctness of the callers therefore must not
// depend on *where* the body runs — only on which indices it receives —
// which is also what makes the results thread-count independent.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/sync.hpp"
#include "src/common/thread_annotations.hpp"

namespace netfail::par {

/// Worker count for new pools: NETFAIL_THREADS if set (clamped to
/// [1, 256]), else std::thread::hardware_concurrency(), else 1. Re-read on
/// every call; the global pool samples it once at first use.
std::size_t default_threads();

class ThreadPool {
 public:
  /// threads == 0 means default_threads(). A pool of n threads runs bodies
  /// on n-1 background workers plus the calling thread.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t threads() const { return participants_; }

  /// Invoke body(begin, end) over disjoint chunks covering [0, n); chunks
  /// hold at least `grain` indices (except possibly the last). Blocks until
  /// every index is processed. Rethrows the first body exception. Chunk
  /// boundaries are a scheduling detail: the body must treat indices
  /// independently.
  using RangeBody = std::function<void(std::size_t begin, std::size_t end)>;
  void for_range(std::size_t n, std::size_t grain, const RangeBody& body);

  /// The process-wide pool (created on first use, intentionally leaked so
  /// it is reachable at exit and never destructed under static teardown).
  static ThreadPool& global();

 private:
  struct Job;
  void worker_loop(std::size_t shard_index);
  static void drain(Job& job, std::size_t home_shard);

  std::size_t participants_ = 1;
  std::vector<std::thread> workers_;

  sync::Mutex mu_;
  sync::CondVar work_cv_;
  std::shared_ptr<Job> job_ NETFAIL_GUARDED_BY(mu_);
  std::uint64_t generation_ NETFAIL_GUARDED_BY(mu_) = 0;
  bool stopping_ NETFAIL_GUARDED_BY(mu_) = false;

  // Held across the whole fork/join region: every per-shard and per-job
  // lock nests under it. The cross-TU members (Shard::mu, Job::done_mu,
  // Job::error_mu in par.cpp) are out of the attribute's reach, so their
  // ordering is declared in comment form for netfail_audit.
  // netfail-audit: acquired-before(mu, done_mu, error_mu)
  sync::Mutex submit_mu_ NETFAIL_ACQUIRED_BEFORE(mu_);  // one fork/join
                                                        // region at a time
};

/// The pool used by the free functions below. Defaults to
/// ThreadPool::global(); scoped-overridable for serial/parallel differential
/// testing.
ThreadPool& current_pool();

/// RAII override of current_pool() for this thread (and, transitively, for
/// the library layers it calls). Pass nullptr to restore the global pool.
class PoolGuard {
 public:
  explicit PoolGuard(ThreadPool* pool);
  ~PoolGuard();
  PoolGuard(const PoolGuard&) = delete;
  PoolGuard& operator=(const PoolGuard&) = delete;

 private:
  ThreadPool* previous_;
};

/// parallel_for over [0, n) through current_pool().
void parallel_for(std::size_t n, std::size_t grain,
                  const ThreadPool::RangeBody& body);

/// Per-index convenience: fn(i) for i in [0, n).
template <typename Fn>
void parallel_for_each_index(std::size_t n, std::size_t grain, Fn&& fn) {
  parallel_for(n, grain, [&fn](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

/// Map items through fn concurrently; results land in input order, so the
/// output is identical for any thread count. The result type must be
/// default-constructible.
template <typename T, typename Fn>
auto parallel_map(const std::vector<T>& items, Fn&& fn)
    -> std::vector<decltype(fn(items.front()))> {
  std::vector<decltype(fn(items.front()))> out(items.size());
  parallel_for(items.size(), 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) out[i] = fn(items[i]);
  });
  return out;
}

}  // namespace netfail::par
