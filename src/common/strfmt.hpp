// Small string utilities: printf-style formatting into std::string plus the
// handful of split/trim/join helpers the config and syslog parsers need.
// (GCC 12 has no <format>, so strformat() fills the gap.)
#pragma once

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace netfail {

/// printf into a std::string.
std::string strformat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Split on a single character; keeps empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Split on any run of whitespace; drops empty fields.
std::vector<std::string> split_whitespace(std::string_view s);

/// Strip leading/trailing whitespace.
std::string_view trim(std::string_view s);

/// Join with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Parse a non-negative decimal integer; returns false on any non-digit.
bool parse_uint(std::string_view s, std::uint64_t& out);

/// Render a double with `decimals` places ("%.*f").
std::string format_double(double v, int decimals);

/// Render an integer with thousands separators: 11095550 -> "11,095,550".
std::string with_commas(std::int64_t v);

}  // namespace netfail
