// netfail::sync — std synchronization primitives with thread-safety
// capability attributes attached.
//
// Clang's -Wthread-safety analysis only follows lock/unlock operations that
// carry the capability attributes, and libstdc++'s std::mutex carries none.
// These wrappers forward every operation inline to the underlying std type
// (zero runtime cost, identical semantics) while giving the analysis the
// attribute surface it needs:
//
//   sync::Mutex      — std::mutex,            a NETFAIL_CAPABILITY
//   sync::MutexLock  — std::lock_guard,       a NETFAIL_SCOPED_CAPABILITY
//   sync::UniqueLock — std::unique_lock,      a relockable scoped capability
//   sync::CondVar    — std::condition_variable over a sync::UniqueLock
//
// Predicate waits: prefer an explicit `while (!cond) cv.wait(lock);` loop in
// the annotated function over passing a lambda predicate — the analysis
// treats a lambda body as a separate unannotated function and cannot see
// that the capability is held inside it.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "src/common/thread_annotations.hpp"

namespace netfail::sync {

class CondVar;

/// A std::mutex that the thread-safety analysis understands.
class NETFAIL_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() NETFAIL_ACQUIRE() { mu_.lock(); }
  void unlock() NETFAIL_RELEASE() { mu_.unlock(); }
  bool try_lock() NETFAIL_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  friend class UniqueLock;
  std::mutex mu_;
};

/// std::lock_guard over a sync::Mutex: acquires on construction, releases on
/// destruction, no manual unlock.
class NETFAIL_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) NETFAIL_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() NETFAIL_RELEASE() {}
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  std::lock_guard<std::mutex> lock_;
};

/// std::unique_lock over a sync::Mutex: supports mid-scope unlock/relock and
/// condition-variable waits. Must be locked at destruction or explicitly
/// unlocked — the analysis tracks the state across lock()/unlock() pairs.
class NETFAIL_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) NETFAIL_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~UniqueLock() NETFAIL_RELEASE() {}
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock() NETFAIL_ACQUIRE() { lock_.lock(); }
  void unlock() NETFAIL_RELEASE() { lock_.unlock(); }
  bool owns_lock() const { return lock_.owns_lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// std::condition_variable waiting on a sync::UniqueLock. The capability is
/// held before and after every wait (the internal unlock/relock inside the
/// std wait is invisible to callers, exactly like std::condition_variable).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  void wait(UniqueLock& lock) { cv_.wait(lock.lock_); }

  template <typename Predicate>
  void wait(UniqueLock& lock, Predicate pred) {
    cv_.wait(lock.lock_, std::move(pred));
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(UniqueLock& lock,
                          const std::chrono::duration<Rep, Period>& dur) {
    return cv_.wait_for(lock.lock_, dur);
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      UniqueLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

 private:
  std::condition_variable cv_;
};

}  // namespace netfail::sync
