// IntervalSet: a set of points in time represented as sorted, disjoint,
// half-open intervals.
//
// Downtime accounting is interval arithmetic: "hours of downtime seen by
// both sources" is the measure of an intersection, "downtime missed by
// syslog" is a difference, "remove periods when the listener was offline"
// is a subtraction. Centralizing that arithmetic here keeps the analysis
// code free of off-by-one boundary bugs.
#pragma once

#include <string>
#include <vector>

#include "src/common/time.hpp"

namespace netfail {

class IntervalSet {
 public:
  IntervalSet() = default;
  explicit IntervalSet(std::vector<TimeRange> ranges);

  /// Add [begin, end), merging with any overlapping or adjacent intervals.
  void add(TimeRange r);
  void add(TimePoint begin, TimePoint end) { add(TimeRange{begin, end}); }

  /// Remove [begin, end) from the set, splitting intervals as needed.
  void subtract(TimeRange r);

  bool contains(TimePoint t) const;

  /// True if [r.begin, r.end) intersects the set at all.
  bool overlaps(TimeRange r) const;

  /// True if [r.begin, r.end) lies entirely inside the set.
  bool covers(TimeRange r) const;

  /// Total measure of the set.
  Duration total() const;

  /// Measure of the intersection with [r.begin, r.end).
  Duration measure_within(TimeRange r) const;

  bool empty() const { return ranges_.empty(); }
  std::size_t size() const { return ranges_.size(); }
  const std::vector<TimeRange>& ranges() const { return ranges_; }

  IntervalSet intersect(const IntervalSet& other) const;
  IntervalSet unite(const IntervalSet& other) const;
  IntervalSet difference(const IntervalSet& other) const;
  /// Complement relative to the window [window.begin, window.end).
  IntervalSet complement_within(TimeRange window) const;

  bool operator==(const IntervalSet&) const = default;

  std::string to_string() const;

 private:
  void normalize();

  // Invariant: sorted by begin, pairwise disjoint, non-empty, non-adjacent.
  std::vector<TimeRange> ranges_;
};

}  // namespace netfail
