// EventColumns — the columnar (SoA) batch representation of link
// transitions (DESIGN.md §13).
//
// The AoS transition structs (`syslog::SyslogTransition`,
// `isis::IsisTransition`, `analysis::RawTransition`) are what the
// per-event streaming path wants; the batch analysis passes want the
// opposite layout: one contiguous array per field, so sorting touches
// 12-byte (link, time) pairs instead of 40+ byte structs and the
// reconstruction FSM walk streams through cache lines of timestamps and
// tags. A row is (time, link, reporter, tag); the rare free-text `reason`
// strings live in a row-indexed side table so the hot columns stay
// fixed-width and string-free — free text is deliberately NOT interned
// (the symbol table must stay bounded by names, not message text).
//
// Tag layout: bit 0 is the link direction (set = UP) for every producer;
// bits 1..7 are producer-defined (the syslog extractor stores the message
// type there, see src/syslog/extract.hpp). Consumers that only need
// (link, time, dir) — the reconstruction — work on any producer's batch.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/events.hpp"
#include "src/common/ids.hpp"
#include "src/common/sym.hpp"
#include "src/common/time.hpp"

namespace netfail {

struct EventColumns {
  /// Tag bit 0: link direction, set for UP.
  static constexpr std::uint8_t kTagUp = 0x01;

  std::vector<std::int64_t> time_ms;   // TimePoint::unix_millis
  std::vector<LinkId> link;            // invalid when resolution failed
  std::vector<Symbol> reporter;        // interned originator hostname
  std::vector<std::uint8_t> tag;       // bit 0 dir; rest producer-defined
  /// Side table for rare free-text payloads, (row, text) with rows strictly
  /// increasing (append order). Most rows have no entry.
  std::vector<std::pair<std::uint32_t, std::string>> reason;

  std::size_t size() const { return time_ms.size(); }
  bool empty() const { return time_ms.empty(); }

  void clear() {
    time_ms.clear();
    link.clear();
    reporter.clear();
    tag.clear();
    reason.clear();
  }

  void reserve(std::size_t n) {
    time_ms.reserve(n);
    link.reserve(n);
    reporter.reserve(n);
    tag.reserve(n);
  }

  /// Append one row; returns its index (for `set_reason`).
  std::uint32_t push_back(TimePoint t, LinkId l, Symbol rep, std::uint8_t tg) {
    time_ms.push_back(t.unix_millis());
    link.push_back(l);
    reporter.push_back(rep);
    tag.push_back(tg);
    return static_cast<std::uint32_t>(time_ms.size() - 1);
  }

  /// Attach free text to the most recently appended rows. Rows must be
  /// passed in increasing order (natural when called right after
  /// push_back), keeping the side table sorted for lookup.
  void set_reason(std::uint32_t row, std::string text) {
    reason.emplace_back(row, std::move(text));
  }

  /// The side-table text for `row`; empty view when none was attached.
  std::string_view reason_for(std::uint32_t row) const {
    const auto it = std::lower_bound(
        reason.begin(), reason.end(), row,
        [](const auto& entry, std::uint32_t key) { return entry.first < key; });
    return (it != reason.end() && it->first == row) ? std::string_view(it->second)
                                                    : std::string_view();
  }

  TimePoint time(std::size_t i) const {
    return TimePoint::from_unix_millis(time_ms[i]);
  }
  LinkDirection dir(std::size_t i) const {
    return (tag[i] & kTagUp) != 0 ? LinkDirection::kUp : LinkDirection::kDown;
  }
};

}  // namespace netfail
