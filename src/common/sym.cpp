#include "src/common/sym.hpp"

#include <atomic>
#include <cstring>
#include <memory>
#include <vector>

#include "src/common/assert.hpp"
#include "src/common/sync.hpp"
#include "src/common/thread_annotations.hpp"

namespace netfail::sym {
namespace {

constexpr std::uint32_t kEmptySlot = 0xffffffffu;

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// One generation of the open-addressing index: a power-of-two array of
/// atomic symbol ids. Readers probe lock-free; only writers (under the table
/// mutex) insert or build replacement generations.
struct Index {
  explicit Index(std::size_t capacity)
      : mask(capacity - 1), slots(new std::atomic<std::uint32_t>[capacity]) {
    for (std::size_t i = 0; i < capacity; ++i) {
      slots[i].store(kEmptySlot, std::memory_order_relaxed);
    }
  }
  std::size_t mask;
  std::unique_ptr<std::atomic<std::uint32_t>[]> slots;
};

/// The process-wide name table: an append-only arena of NUL-terminated
/// bytes, a dense id -> entry map in fixed-size blocks (so entry addresses
/// never move), and the probe index.
class NameTable {
 public:
  static NameTable& instance() {
    static NameTable* table = new NameTable();  // never destroyed: Symbols
    return *table;                              // may outlive static dtors
  }

  std::uint32_t intern(std::string_view s) {
    const std::uint64_t hash = fnv1a(s);
    // Fast path: lock-free probe of the published index.
    const std::uint32_t found = probe(index_.load(std::memory_order_acquire), hash, s);
    if (found != kEmptySlot) return found;

    sync::MutexLock lock(mu_);
    // Re-probe under the lock: another writer may have inserted `s`.
    Index* idx = index_.load(std::memory_order_relaxed);
    const std::uint32_t again = probe(idx, hash, s);
    if (again != kEmptySlot) return again;

    const std::uint32_t id = size_.load(std::memory_order_relaxed);
    NETFAIL_ASSERT(id != kEmptySlot, "interner full");
    store_entry(id, s);
    if ((id + 1) * 10 >= (idx->mask + 1) * 7) idx = grow(idx);
    insert(idx, hash, id);
    size_.store(id + 1, std::memory_order_release);
    return id;
  }

  std::uint32_t find(std::string_view s) const {
    return probe(index_.load(std::memory_order_acquire), fnv1a(s), s);
  }

  std::string_view view(std::uint32_t id) const {
    if (id >= size_.load(std::memory_order_acquire)) return {};
    const Entry& e = entry(id);
    return {e.data, e.len};
  }

  const char* c_str(std::uint32_t id) const {
    if (id >= size_.load(std::memory_order_acquire)) return "";
    return entry(id).data;
  }

  std::size_t size() const { return size_.load(std::memory_order_acquire); }

 private:
  struct Entry {
    const char* data;
    std::uint32_t len;
  };

  static constexpr std::size_t kBlockShift = 10;  // 1024 entries per block
  static constexpr std::size_t kBlockSize = std::size_t{1} << kBlockShift;
  static constexpr std::size_t kMaxBlocks = 1 << 16;  // 64M symbols, plenty
  static constexpr std::size_t kArenaChunk = 64 * 1024;

  NameTable() : index_(new Index(1024)) {
    for (auto& b : blocks_) b.store(nullptr, std::memory_order_relaxed);
    const std::uint32_t empty = intern("");
    NETFAIL_ASSERT(empty == 0, "empty string must be id 0");
  }

  const Entry& entry(std::uint32_t id) const {
    Entry* block = blocks_[id >> kBlockShift].load(std::memory_order_acquire);
    return block[id & (kBlockSize - 1)];
  }

  /// Lock-free lookup in one index generation. Returns the id or kEmptySlot.
  std::uint32_t probe(const Index* idx, std::uint64_t hash,
                      std::string_view s) const {
    for (std::size_t i = hash & idx->mask;; i = (i + 1) & idx->mask) {
      const std::uint32_t id = idx->slots[i].load(std::memory_order_acquire);
      if (id == kEmptySlot) return kEmptySlot;
      const Entry& e = entry(id);
      if (e.len == s.size() && std::memcmp(e.data, s.data(), s.size()) == 0) {
        return id;
      }
    }
  }

  /// Writer-only (mutex held): copy the bytes into the arena and publish the
  /// entry for `id`. The release store of the index slot (or of size_, for
  /// view()-by-id readers) orders these writes for readers.
  void store_entry(std::uint32_t id, std::string_view s)
      NETFAIL_REQUIRES(mu_) {
    if (arena_.empty() || arena_used_ + s.size() + 1 > arena_.back().size) {
      const std::size_t cap = std::max(kArenaChunk, s.size() + 1);
      arena_.push_back(Chunk{std::unique_ptr<char[]>(new char[cap]), cap});
      arena_used_ = 0;
    }
    char* dst = arena_.back().bytes.get() + arena_used_;
    std::memcpy(dst, s.data(), s.size());
    dst[s.size()] = '\0';
    arena_used_ += s.size() + 1;

    const std::size_t b = id >> kBlockShift;
    NETFAIL_ASSERT(b < kMaxBlocks, "interner block space exhausted");
    Entry* block = blocks_[b].load(std::memory_order_relaxed);
    if (block == nullptr) {
      block = new Entry[kBlockSize];
      blocks_[b].store(block, std::memory_order_release);
    }
    block[id & (kBlockSize - 1)] = Entry{dst, static_cast<std::uint32_t>(s.size())};
  }

  /// Writer-only: insert an id into one index generation.
  static void insert(Index* idx, std::uint64_t hash, std::uint32_t id) {
    std::size_t i = hash & idx->mask;
    while (idx->slots[i].load(std::memory_order_relaxed) != kEmptySlot) {
      i = (i + 1) & idx->mask;
    }
    idx->slots[i].store(id, std::memory_order_release);
  }

  /// Writer-only: double the index. The old generation is retired, never
  /// freed, so concurrent readers mid-probe stay valid.
  Index* grow(Index* old) NETFAIL_REQUIRES(mu_) {
    auto next = std::make_unique<Index>((old->mask + 1) * 2);
    const std::uint32_t n = size_.load(std::memory_order_relaxed);
    for (std::uint32_t id = 0; id < n; ++id) {
      const Entry& e = entry(id);
      insert(next.get(), fnv1a({e.data, e.len}), id);
    }
    retired_.push_back(std::unique_ptr<Index>(old));
    Index* fresh = next.release();
    index_.store(fresh, std::memory_order_release);
    return fresh;
  }

  struct Chunk {
    std::unique_ptr<char[]> bytes;
    std::size_t size;
  };

  // index_/size_/blocks_ are written under mu_ but read lock-free via the
  // acquire/release publication protocol described in sym.hpp — atomics,
  // not GUARDED_BY, is the honest annotation for them.
  sync::Mutex mu_;
  std::atomic<Index*> index_;
  std::atomic<std::uint32_t> size_{0};
  std::atomic<Entry*> blocks_[kMaxBlocks];
  std::vector<Chunk> arena_ NETFAIL_GUARDED_BY(mu_);   // writer bookkeeping
  std::size_t arena_used_ NETFAIL_GUARDED_BY(mu_) = 0; // used in arena_.back()
  std::vector<std::unique_ptr<Index>> retired_ NETFAIL_GUARDED_BY(mu_);
};

}  // namespace

std::uint32_t intern_id(std::string_view s) {
  return NameTable::instance().intern(s);
}

std::uint32_t find_id(std::string_view s) {
  return NameTable::instance().find(s);
}

std::string_view id_view(std::uint32_t id) {
  return NameTable::instance().view(id);
}

const char* id_c_str(std::uint32_t id) { return NameTable::instance().c_str(id); }

std::size_t table_size() { return NameTable::instance().size(); }

}  // namespace netfail::sym
