// Portable spellings of Clang's -Wthread-safety capability attributes.
//
// The concurrency layer's locking invariants (which mutex guards which
// field, which methods require a lock already held) are documented with
// these macros and *checked at compile time* under Clang with
// -Wthread-safety (the NETFAIL_THREAD_SAFETY CMake option turns the
// warnings into errors). Under GCC/MSVC every macro expands to nothing, so
// the annotations cost nothing where the analysis is unavailable.
//
// Use the sync::Mutex / sync::MutexLock / sync::UniqueLock / sync::CondVar
// wrappers from src/common/sync.hpp rather than raw std primitives: the
// analysis only understands lock/unlock operations that carry these
// attributes, and the std types carry none on libstdc++.
//
// Attribute reference:
//   https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__)
#define NETFAIL_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define NETFAIL_THREAD_ANNOTATION(x)
#endif

/// Marks a type as a capability (e.g. a mutex): NETFAIL_CAPABILITY("mutex").
#define NETFAIL_CAPABILITY(x) NETFAIL_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases a
/// capability (lock_guard/unique_lock analogues).
#define NETFAIL_SCOPED_CAPABILITY NETFAIL_THREAD_ANNOTATION(scoped_lockable)

/// Field annotation: reads and writes require holding `x`.
#define NETFAIL_GUARDED_BY(x) NETFAIL_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field annotation: the *pointed-to* data requires holding `x`.
#define NETFAIL_PT_GUARDED_BY(x) NETFAIL_THREAD_ANNOTATION(pt_guarded_by(x))

/// Lock-ordering declarations (deadlock detection).
#define NETFAIL_ACQUIRED_BEFORE(...) \
  NETFAIL_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define NETFAIL_ACQUIRED_AFTER(...) \
  NETFAIL_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function annotation: the caller must hold the capability on entry (and
/// still holds it on exit). The `_locked()` method family uses this.
#define NETFAIL_REQUIRES(...) \
  NETFAIL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define NETFAIL_REQUIRES_SHARED(...) \
  NETFAIL_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function annotation: acquires the capability (not held on entry, held on
/// exit). With no argument on a member of a capability/scoped type, refers
/// to the object itself.
#define NETFAIL_ACQUIRE(...) \
  NETFAIL_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define NETFAIL_ACQUIRE_SHARED(...) \
  NETFAIL_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function annotation: releases the capability (held on entry).
#define NETFAIL_RELEASE(...) \
  NETFAIL_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define NETFAIL_RELEASE_SHARED(...) \
  NETFAIL_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function annotation: acquires the capability iff the return value equals
/// the first macro argument: NETFAIL_TRY_ACQUIRE(true).
#define NETFAIL_TRY_ACQUIRE(...) \
  NETFAIL_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function annotation: the caller must NOT hold the capability (prevents
/// self-deadlock on non-recursive mutexes).
#define NETFAIL_EXCLUDES(...) NETFAIL_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Assertion that the capability is held (runtime-checked elsewhere); tells
/// the analysis to assume it from here on.
#define NETFAIL_ASSERT_CAPABILITY(x) \
  NETFAIL_THREAD_ANNOTATION(assert_capability(x))

/// Function annotation: returns a reference to the named capability.
#define NETFAIL_RETURN_CAPABILITY(x) NETFAIL_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for code the analysis cannot model (e.g. lock-free
/// publication protocols). Use sparingly and leave a comment saying why.
#define NETFAIL_NO_THREAD_SAFETY_ANALYSIS \
  NETFAIL_THREAD_ANNOTATION(no_thread_safety_analysis)
