// Lightweight assertion macro for programming errors (contract violations).
//
// Unlike <cassert>, NETFAIL_ASSERT is active in all build types: the
// simulator and analysis pipeline are deterministic, so a violated invariant
// is always a bug worth crashing on, never a data-dependent condition.
#pragma once

#include <cstdio>
#include <cstdlib>

#define NETFAIL_ASSERT(cond, msg)                                          \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "netfail assertion failed: %s\n  at %s:%d: %s\n", \
                   #cond, __FILE__, __LINE__, msg);                        \
      std::abort();                                                        \
    }                                                                      \
  } while (0)
