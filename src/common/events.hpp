// Shared vocabulary for link-state events across data sources.
#pragma once

namespace netfail {

/// Direction of a link state transition.
enum class LinkDirection { kDown, kUp };

inline const char* link_direction_name(LinkDirection d) {
  return d == LinkDirection::kDown ? "DOWN" : "UP";
}

}  // namespace netfail
