#include "src/common/flags.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace netfail::flags {
namespace {

const FlagSpec* find_spec(const std::vector<FlagSpec>& specs,
                          const std::string& name) {
  for (const FlagSpec& s : specs) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace

Parsed parse_flags(const std::vector<std::string>& args,
                   const std::vector<FlagSpec>& specs) {
  Parsed out;
  bool flags_done = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (flags_done || arg.size() < 3 || arg.compare(0, 2, "--") != 0) {
      if (arg == "--") {
        flags_done = true;
        continue;
      }
      out.positional.push_back(arg);
      continue;
    }

    std::string name = arg;
    std::optional<std::string> inline_value;
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      inline_value = arg.substr(eq + 1);
    }

    const FlagSpec* spec = find_spec(specs, name);
    if (spec == nullptr) {
      out.error = "unknown flag: " + name;
      return out;
    }
    out.present.insert(name);
    if (!spec->takes_value) {
      if (inline_value) {
        out.error = "flag " + name + " does not take a value";
        return out;
      }
      continue;
    }
    if (inline_value) {
      out.values[name] = *inline_value;
    } else if (i + 1 < args.size()) {
      out.values[name] = args[++i];
    } else {
      out.error = "flag " + name + " requires a value";
      return out;
    }
  }
  out.ok = true;
  return out;
}

Parsed parse_flags(int argc, char** argv, int first,
                   const std::vector<FlagSpec>& specs) {
  std::vector<std::string> args;
  for (int i = first; i < argc; ++i) args.emplace_back(argv[i]);
  return parse_flags(args, specs);
}

Result<std::uint16_t> parse_port(const std::string& flag,
                                 const std::string& value) {
  char* end = nullptr;
  const unsigned long n = std::strtoul(value.c_str(), &end, 10);
  // strtoul is lenient (leading whitespace, '+', '-' wraparound); a port is
  // strictly a run of decimal digits.
  if (value.empty() || *end != '\0' ||
      !std::isdigit(static_cast<unsigned char>(value.front())) || n < 1 ||
      n > 65535) {
    return make_error(ErrorCode::kInvalidArgument,
                      "flag " + flag + " expects a port (1-65535), got '" +
                          value + "'");
  }
  return static_cast<std::uint16_t>(n);
}

Result<std::uint32_t> parse_shard_count(const std::string& flag,
                                        const std::string& value) {
  char* end = nullptr;
  const unsigned long n = std::strtoul(value.c_str(), &end, 10);
  // Same strictness as parse_port: a shard count is a bare run of decimal
  // digits, no whitespace, no sign, no trailing junk.
  if (value.empty() || *end != '\0' ||
      !std::isdigit(static_cast<unsigned char>(value.front())) || n < 1 ||
      n > 256) {
    return make_error(ErrorCode::kInvalidArgument,
                      "flag " + flag + " expects a shard count (1-256), got '" +
                          value + "'");
  }
  return static_cast<std::uint32_t>(n);
}

Result<double> parse_probability(const std::string& flag,
                                 const std::string& value) {
  char* end = nullptr;
  const double p = std::strtod(value.c_str(), &end);
  // Reject strtod's extras (whitespace, sign prefixes, nan/inf): a
  // probability literal starts with a digit or a dot and is finite.
  if (value.empty() || *end != '\0' ||
      !(std::isdigit(static_cast<unsigned char>(value.front())) ||
        value.front() == '.') ||
      !std::isfinite(p) || p < 0.0 || p > 1.0) {
    return make_error(ErrorCode::kInvalidArgument,
                      "flag " + flag + " expects a probability in [0,1], got '" +
                          value + "'");
  }
  return p;
}

Result<double> parse_nonneg_real(const std::string& flag,
                                 const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (value.empty() || *end != '\0' ||
      !(std::isdigit(static_cast<unsigned char>(value.front())) ||
        value.front() == '.') ||
      !std::isfinite(v) || v < 0.0) {
    return make_error(ErrorCode::kInvalidArgument,
                      "flag " + flag + " expects a non-negative number, got '" +
                          value + "'");
  }
  return v;
}

Result<double> parse_positive_real(const std::string& flag,
                                   const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (value.empty() || *end != '\0' ||
      !(std::isdigit(static_cast<unsigned char>(value.front())) ||
        value.front() == '.') ||
      !std::isfinite(v) || v <= 0.0) {
    return make_error(ErrorCode::kInvalidArgument,
                      "flag " + flag + " expects a positive number, got '" +
                          value + "'");
  }
  return v;
}

Result<std::string> parse_path(const std::string& flag,
                               const std::string& value) {
  // A value starting with '-' is almost always the *next* flag swallowed
  // by a missing argument ("--state-dir --http-port 80"); NUL and newline
  // only arise from quoting accidents. Everything else is a legal path.
  const bool looks_like_flag = !value.empty() && value.front() == '-';
  const bool has_control =
      value.find('\n') != std::string::npos ||
      value.find('\r') != std::string::npos ||
      value.find('\0') != std::string::npos;
  if (value.empty() || looks_like_flag || has_control) {
    return make_error(ErrorCode::kInvalidArgument,
                      "flag " + flag + " expects a path, got '" + value + "'");
  }
  return value;
}

Result<Duration> parse_duration(const std::string& flag,
                                const std::string& value) {
  const auto fail = [&]() -> Result<Duration> {
    return make_error(ErrorCode::kInvalidArgument,
                      "flag " + flag +
                          " expects a duration like 500ms/30s/5m/2h/1d, got '" +
                          value + "'");
  };
  if (value.empty() ||
      !std::isdigit(static_cast<unsigned char>(value.front()))) {
    return fail();
  }
  char* end = nullptr;
  const unsigned long long n = std::strtoull(value.c_str(), &end, 10);
  const std::string unit(end);
  // The count must be positive and leave room for the ms multiplier; the
  // unit suffix is mandatory (a bare number is ambiguous).
  if (n < 1 || n > (1ull << 40)) return fail();
  const auto count = static_cast<std::int64_t>(n);
  if (unit == "ms") return Duration::millis(count);
  if (unit == "s") return Duration::seconds(count);
  if (unit == "m") return Duration::minutes(count);
  if (unit == "h") return Duration::hours(count);
  if (unit == "d") return Duration::days(count);
  return fail();
}

}  // namespace netfail::flags
