// Deterministic random number generation.
//
// Everything stochastic in the simulator flows from one seeded Rng so that
// a scenario is exactly reproducible across runs and platforms. We implement
// xoshiro256** plus our own samplers instead of <random> engines +
// distributions because libstdc++/libc++ distributions are allowed to (and
// do) produce different streams for the same seed, which would make the
// benchmark tables machine-dependent.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/assert.hpp"
#include "src/common/time.hpp"

namespace netfail {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via SplitMix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit word.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi). Requires lo <= hi.
  double uniform_real(double lo, double hi);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponential with the given mean (= 1/rate). Requires mean > 0.
  double exponential(double mean);

  /// Weibull with shape k and scale lambda. k < 1 gives the heavy tail
  /// characteristic of failure-duration distributions.
  double weibull(double shape, double scale);

  /// Log-normal: exp(N(mu, sigma^2)).
  double lognormal(double mu, double sigma);

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal(double mean, double stddev);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64).
  std::uint32_t poisson(double mean);

  /// Geometric: number of failures before first success, p in (0,1].
  std::uint32_t geometric(double p);

  /// Pick an index in [0, weights.size()) proportionally to weights.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// A random Duration uniform in [lo, hi].
  Duration uniform_duration(Duration lo, Duration hi) {
    return Duration::millis(uniform_int(lo.total_millis(), hi.total_millis()));
  }

  /// Derive an independent child generator; used to give each link / router
  /// its own stream so adding one link does not perturb all others.
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace netfail
