// Simulation time: absolute instants and durations with millisecond
// resolution.
//
// The whole system is driven by one logical clock. Instants are stored as
// milliseconds since the Unix epoch so that rendered syslog timestamps and
// LSP capture timestamps look like real operational data. All arithmetic is
// integral; there is no wall-clock dependence anywhere in the library.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace netfail {

/// A span of simulated time, millisecond resolution, signed.
class Duration {
 public:
  constexpr Duration() = default;
  static constexpr Duration millis(std::int64_t ms) { return Duration{ms}; }
  static constexpr Duration seconds(std::int64_t s) { return Duration{s * 1000}; }
  static constexpr Duration minutes(std::int64_t m) { return seconds(m * 60); }
  static constexpr Duration hours(std::int64_t h) { return minutes(h * 60); }
  static constexpr Duration days(std::int64_t d) { return hours(d * 24); }
  /// Construct from a (possibly fractional) number of seconds.
  static constexpr Duration from_seconds_f(double s) {
    return Duration{static_cast<std::int64_t>(s * 1000.0)};
  }

  constexpr std::int64_t total_millis() const { return ms_; }
  constexpr std::int64_t total_seconds() const { return ms_ / 1000; }
  constexpr double seconds_f() const { return static_cast<double>(ms_) / 1000.0; }
  constexpr double hours_f() const { return seconds_f() / 3600.0; }
  constexpr double days_f() const { return hours_f() / 24.0; }

  constexpr bool is_zero() const { return ms_ == 0; }
  constexpr bool is_negative() const { return ms_ < 0; }

  constexpr Duration operator+(Duration o) const { return Duration{ms_ + o.ms_}; }
  constexpr Duration operator-(Duration o) const { return Duration{ms_ - o.ms_}; }
  constexpr Duration operator-() const { return Duration{-ms_}; }
  constexpr Duration operator*(std::int64_t k) const { return Duration{ms_ * k}; }
  constexpr Duration operator/(std::int64_t k) const { return Duration{ms_ / k}; }
  constexpr double operator/(Duration o) const {
    return static_cast<double>(ms_) / static_cast<double>(o.ms_);
  }
  Duration& operator+=(Duration o) { ms_ += o.ms_; return *this; }
  Duration& operator-=(Duration o) { ms_ -= o.ms_; return *this; }
  constexpr auto operator<=>(const Duration&) const = default;

  /// Human-readable rendering, e.g. "2d 3h 04m 05.250s" or "42s".
  std::string to_string() const;

 private:
  explicit constexpr Duration(std::int64_t ms) : ms_(ms) {}
  std::int64_t ms_ = 0;
};

/// An absolute instant on the simulation clock (ms since Unix epoch, UTC).
class TimePoint {
 public:
  constexpr TimePoint() = default;
  static constexpr TimePoint from_unix_millis(std::int64_t ms) { return TimePoint{ms}; }
  static constexpr TimePoint from_unix_seconds(std::int64_t s) { return TimePoint{s * 1000}; }
  /// Construct from a UTC civil date/time (proleptic Gregorian calendar).
  static TimePoint from_civil(int year, int month, int day,
                              int hour = 0, int minute = 0, int second = 0,
                              int millisecond = 0);

  constexpr std::int64_t unix_millis() const { return ms_; }
  constexpr std::int64_t unix_seconds() const { return ms_ / 1000; }

  constexpr TimePoint operator+(Duration d) const { return TimePoint{ms_ + d.total_millis()}; }
  constexpr TimePoint operator-(Duration d) const { return TimePoint{ms_ - d.total_millis()}; }
  constexpr Duration operator-(TimePoint o) const { return Duration::millis(ms_ - o.ms_); }
  TimePoint& operator+=(Duration d) { ms_ += d.total_millis(); return *this; }
  constexpr auto operator<=>(const TimePoint&) const = default;

  /// ISO-8601 rendering, "2010-10-20 14:03:27.250".
  std::string to_string() const;
  /// BSD syslog header rendering, "Oct 20 14:03:27" (RFC 3164 sect. 4.1.2).
  std::string to_syslog_string() const;

 private:
  explicit constexpr TimePoint(std::int64_t ms) : ms_(ms) {}
  std::int64_t ms_ = 0;
};

/// Civil (calendar) decomposition of a TimePoint, UTC.
struct CivilTime {
  int year;
  int month;   // 1..12
  int day;     // 1..31
  int hour;    // 0..23
  int minute;  // 0..59
  int second;  // 0..59
  int millisecond;  // 0..999
};

/// Decompose an instant into UTC calendar fields.
CivilTime to_civil(TimePoint t);

/// Three-letter English month abbreviation, month in 1..12.
const char* month_abbrev(int month);

/// A half-open time interval [begin, end). Empty when end <= begin.
struct TimeRange {
  TimePoint begin;
  TimePoint end;

  constexpr bool empty() const { return end <= begin; }
  constexpr Duration duration() const { return empty() ? Duration{} : end - begin; }
  constexpr bool contains(TimePoint t) const { return begin <= t && t < end; }
  constexpr bool overlaps(const TimeRange& o) const {
    return begin < o.end && o.begin < end;
  }
  constexpr auto operator<=>(const TimeRange&) const = default;

  std::string to_string() const;
};

}  // namespace netfail
