#include "src/common/table.hpp"

#include <algorithm>

namespace netfail {
namespace {
const char* const kRuleSentinel = "\x01--rule--";
}

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
  if (aligns_.size() < header_.size()) {
    aligns_.resize(header_.size(), Align::kRight);
    if (!aligns_.empty()) aligns_[0] = Align::kLeft;
  }
}

void TextTable::set_align(std::size_t column, Align align) {
  if (aligns_.size() <= column) aligns_.resize(column + 1, Align::kRight);
  aligns_[column] = align;
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TextTable::add_rule() {
  rows_.push_back({kRuleSentinel});
}

std::string TextTable::render() const {
  // Column widths.
  std::vector<std::size_t> width;
  auto grow = [&width](const std::vector<std::string>& row) {
    if (row.size() == 1 && row[0] == kRuleSentinel) return;
    if (width.size() < row.size()) width.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  };
  grow(header_);
  for (const auto& r : rows_) grow(r);

  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  if (total >= 2) total -= 2;

  std::string out;
  auto rule = [&out, total] { out.append(total, '-').push_back('\n'); };
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < width.size(); ++i) {
      const std::string cell = i < row.size() ? row[i] : std::string{};
      const Align a = i < aligns_.size() ? aligns_[i] : Align::kRight;
      const std::size_t pad = width[i] - cell.size();
      if (a == Align::kLeft) {
        out += cell;
        out.append(pad, ' ');
      } else {
        out.append(pad, ' ');
        out += cell;
      }
      if (i + 1 < width.size()) out += "  ";
    }
    // Trim trailing spaces for clean diffs.
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out.push_back('\n');
  };

  if (!title_.empty()) {
    out += title_;
    out.push_back('\n');
    rule();
  }
  if (!header_.empty()) {
    emit(header_);
    rule();
  }
  for (const auto& r : rows_) {
    if (r.size() == 1 && r[0] == kRuleSentinel) {
      rule();
    } else {
      emit(r);
    }
  }
  return out;
}

}  // namespace netfail
