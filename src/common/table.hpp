// TextTable: fixed-width ASCII table renderer.
//
// Every benchmark binary reproduces one of the paper's tables; this renderer
// gives them a uniform, diff-able output format.
#pragma once

#include <string>
#include <vector>

namespace netfail {

class TextTable {
 public:
  enum class Align { kLeft, kRight };

  explicit TextTable(std::string title = {}) : title_(std::move(title)) {}

  /// Set the header row; columns default to right alignment except col 0.
  void set_header(std::vector<std::string> header);
  void set_align(std::size_t column, Align align);
  void add_row(std::vector<std::string> row);
  /// Insert a horizontal rule before the next row.
  void add_rule();

  std::string render() const;

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<Align> aligns_;
  // A row with the sentinel {"--rule--"} renders as a horizontal rule.
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace netfail
