// The network model: routers, interfaces, physical links and customers.
//
// Mirrors the CENIC structure from the paper: Core routers on the backbone,
// CPE routers on customer premises, point-to-point links numbered from /31
// subnets, and 26 router pairs joined by *multiple* parallel links (the
// multi-link adjacencies that the IS-reachability field cannot tell apart,
// sect. 3.4).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/ids.hpp"
#include "src/common/sym.hpp"
#include "src/common/time.hpp"
#include "src/topology/ipv4.hpp"
#include "src/topology/osi.hpp"

namespace netfail {

enum class RouterClass { kCore, kCpe };

inline const char* router_class_name(RouterClass c) {
  return c == RouterClass::kCore ? "Core" : "CPE";
}

/// Operating-system family of the router; determines which syslog dialect it
/// emits (classic IOS "%CLNS-5-ADJCHANGE" vs IOS-XR
/// "%ROUTING-ISIS-4-ADJCHANGE" — both appear in the paper's Table 1).
enum class RouterOs { kIos, kIosXr };

struct Interface {
  InterfaceId id;
  RouterId router;
  Symbol name;           // e.g. "TenGigE0/1/0/3" (interned)
  Ipv4Address address;   // one side of the link's /31
  LinkId link;
};

struct Router {
  RouterId id;
  Symbol hostname;       // e.g. "lax-core-1" (interned)
  RouterClass cls = RouterClass::kCore;
  RouterOs os = RouterOs::kIos;
  OsiSystemId system_id;
  Ipv4Address loopback;
  std::vector<InterfaceId> interfaces;
  CustomerId customer;   // valid only for CPE routers
};

/// A physical point-to-point link. Endpoint A is always the endpoint whose
/// (hostname, interface) sorts first, so link naming is canonical.
struct Link {
  LinkId id;
  RouterId router_a;
  InterfaceId if_a;
  RouterId router_b;
  InterfaceId if_b;
  RouterClass cls = RouterClass::kCore;  // kCpe if either end is a CPE router
  Ipv4Prefix subnet;                     // the /31
  std::uint32_t metric = 10;
  /// Valid when this link is one of several parallel links between the same
  /// router pair (a multi-link adjacency).
  AdjacencyGroupId group;
};

/// A customer site: one or more CPE routers. The site is isolated when no
/// router of the site can reach the backbone hubs.
struct Customer {
  CustomerId id;
  std::string name;  // e.g. "edu042"
  std::vector<RouterId> routers;
};

/// Canonical link name used to join syslog-derived and IS-IS-derived events:
/// "hostA:ifA|hostB:ifB" with endpoints in lexicographic order (sect. 3.4).
std::string make_link_name(std::string_view host_a, std::string_view if_a,
                           std::string_view host_b, std::string_view if_b);

class Topology {
 public:
  // -- construction ---------------------------------------------------------
  RouterId add_router(std::string hostname, RouterClass cls,
                      RouterOs os = RouterOs::kIos,
                      CustomerId customer = CustomerId::invalid());
  CustomerId add_customer(std::string name);
  /// Creates the two interfaces and assigns the /31 out of the link space.
  LinkId add_link(RouterId a, std::string if_name_a, RouterId b,
                  std::string if_name_b, Ipv4Prefix subnet,
                  std::uint32_t metric,
                  AdjacencyGroupId group = AdjacencyGroupId::invalid());

  // -- accessors -------------------------------------------------------------
  const Router& router(RouterId id) const;
  const Interface& interface(InterfaceId id) const;
  const Link& link(LinkId id) const;
  const Customer& customer(CustomerId id) const;

  std::size_t router_count() const { return routers_.size(); }
  std::size_t link_count() const { return links_.size(); }
  std::size_t customer_count() const { return customers_.size(); }
  const std::vector<Router>& routers() const { return routers_; }
  const std::vector<Link>& links() const { return links_; }
  const std::vector<Customer>& customers() const { return customers_; }

  std::size_t router_count(RouterClass cls) const;
  std::size_t link_count(RouterClass cls) const;

  // -- lookups ---------------------------------------------------------------
  std::optional<RouterId> find_router(std::string_view hostname) const;
  std::optional<RouterId> find_router(const OsiSystemId& system_id) const;
  std::optional<InterfaceId> find_interface(RouterId router,
                                            std::string_view if_name) const;
  std::optional<LinkId> find_link_by_subnet(const Ipv4Prefix& subnet) const;
  /// All physical links between the given pair (>1 for multi-link pairs).
  std::vector<LinkId> links_between(RouterId a, RouterId b) const;

  /// Canonical "host:if|host:if" name of a link.
  std::string link_name(LinkId id) const;
  /// Other end of a link as seen from `from`.
  RouterId link_peer(LinkId id, RouterId from) const;

  // -- graph queries ----------------------------------------------------------
  /// (neighbor, link) pairs; parallel links appear once each.
  const std::vector<std::pair<RouterId, LinkId>>& adjacency(RouterId id) const;

  /// All multi-link adjacency groups: group id -> member links.
  const std::vector<std::vector<LinkId>>& adjacency_groups() const {
    return groups_;
  }
  AdjacencyGroupId new_adjacency_group();
  /// Add an already-created link to a multi-link adjacency group.
  void assign_group(LinkId link, AdjacencyGroupId group);

  /// Number of physical links that are members of some multi-link group.
  std::size_t multilink_member_count() const;

 private:
  std::vector<Router> routers_;
  std::vector<Interface> interfaces_;
  std::vector<Link> links_;
  std::vector<Customer> customers_;
  std::vector<std::vector<LinkId>> groups_;
  std::vector<std::vector<std::pair<RouterId, LinkId>>> adjacency_;
  std::unordered_map<Symbol, RouterId> by_hostname_;
  std::unordered_map<OsiSystemId, RouterId> by_system_id_;
  std::unordered_map<Ipv4Prefix, LinkId> by_subnet_;
};

}  // namespace netfail
