#include "src/topology/ipv4.hpp"

#include "src/common/strfmt.hpp"

namespace netfail {

std::string Ipv4Address::to_string() const {
  return strformat("%u.%u.%u.%u", (v_ >> 24) & 0xff, (v_ >> 16) & 0xff,
                   (v_ >> 8) & 0xff, v_ & 0xff);
}

Result<Ipv4Address> Ipv4Address::parse(std::string_view s) {
  const std::vector<std::string> parts = split(s, '.');
  if (parts.size() != 4) {
    return make_error(ErrorCode::kParseError,
                      "IPv4 address needs 4 octets: '" + std::string(s) + "'");
  }
  std::uint32_t v = 0;
  for (const std::string& p : parts) {
    std::uint64_t octet = 0;
    if (!parse_uint(p, octet) || octet > 255) {
      return make_error(ErrorCode::kParseError,
                        "bad IPv4 octet '" + p + "' in '" + std::string(s) + "'");
    }
    v = (v << 8) | static_cast<std::uint32_t>(octet);
  }
  return Ipv4Address{v};
}

Ipv4Prefix::Ipv4Prefix(Ipv4Address network, int length) : length_(length) {
  NETFAIL_ASSERT(length >= 0 && length <= 32, "prefix length out of range");
  network_ = Ipv4Address{network.value() & mask()};
}

std::uint32_t Ipv4Prefix::mask() const {
  if (length_ == 0) return 0;
  return ~std::uint32_t{0} << (32 - length_);
}

std::string Ipv4Prefix::netmask_string() const {
  return Ipv4Address{mask()}.to_string();
}

bool Ipv4Prefix::contains(Ipv4Address a) const {
  return (a.value() & mask()) == network_.value();
}

std::string Ipv4Prefix::to_string() const {
  return network_.to_string() + "/" + std::to_string(length_);
}

Result<Ipv4Prefix> Ipv4Prefix::parse(std::string_view s) {
  const std::size_t slash = s.find('/');
  if (slash == std::string_view::npos) {
    return make_error(ErrorCode::kParseError,
                      "prefix missing '/': '" + std::string(s) + "'");
  }
  Result<Ipv4Address> addr = Ipv4Address::parse(s.substr(0, slash));
  if (!addr) return addr.error();
  std::uint64_t len = 0;
  if (!parse_uint(s.substr(slash + 1), len) || len > 32) {
    return make_error(ErrorCode::kParseError,
                      "bad prefix length in '" + std::string(s) + "'");
  }
  return Ipv4Prefix{*addr, static_cast<int>(len)};
}

}  // namespace netfail
