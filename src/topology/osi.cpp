#include "src/topology/osi.hpp"

#include <cctype>

#include "src/common/strfmt.hpp"

namespace netfail {

OsiSystemId OsiSystemId::from_index(std::uint32_t index) {
  // Emulate the "loopback address as BCD" convention: router index k gets
  // loopback 137.164.255.k (wrapping into the third octet), written as
  // twelve decimal digits packed into six bytes.
  const std::uint32_t a = 137, b = 164;
  const std::uint32_t c = 200 + index / 256;
  const std::uint32_t d = index % 256;
  const std::string digits = strformat("%03u%03u%03u%03u", a, b, c, d);
  std::array<std::uint8_t, 6> bytes{};
  for (int i = 0; i < 6; ++i) {
    const int hi = digits[2 * i] - '0';
    const int lo = digits[2 * i + 1] - '0';
    bytes[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((hi << 4) | lo);
  }
  return OsiSystemId{bytes};
}

std::string OsiSystemId::to_string() const {
  return strformat("%02x%02x.%02x%02x.%02x%02x", b_[0], b_[1], b_[2], b_[3],
                   b_[4], b_[5]);
}

std::string OsiSystemId::to_net_string() const {
  return "49.0001." + to_string() + ".00";
}

Result<OsiSystemId> OsiSystemId::parse(std::string_view s) {
  // Accept "xxxx.xxxx.xxxx" (12 hex digits in 3 groups).
  std::string hex;
  for (char c : s) {
    if (c == '.') continue;
    if (!std::isxdigit(static_cast<unsigned char>(c))) {
      return make_error(ErrorCode::kParseError,
                        "bad system id: '" + std::string(s) + "'");
    }
    hex += c;
  }
  if (hex.size() != 12) {
    return make_error(ErrorCode::kParseError,
                      "system id needs 12 hex digits: '" + std::string(s) + "'");
  }
  auto nibble = [](char c) -> std::uint8_t {
    if (c >= '0' && c <= '9') return static_cast<std::uint8_t>(c - '0');
    if (c >= 'a' && c <= 'f') return static_cast<std::uint8_t>(c - 'a' + 10);
    return static_cast<std::uint8_t>(c - 'A' + 10);
  };
  std::array<std::uint8_t, 6> bytes{};
  for (std::size_t i = 0; i < 6; ++i) {
    bytes[i] = static_cast<std::uint8_t>((nibble(hex[2 * i]) << 4) |
                                         nibble(hex[2 * i + 1]));
  }
  return OsiSystemId{bytes};
}

}  // namespace netfail
