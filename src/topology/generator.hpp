// Deterministic generator for CENIC-like topologies.
//
// The real CENIC graph is proprietary; this generator produces a synthetic
// network matching the published census (Table 1 of the paper): 60 Core and
// 175 CPE routers, 84 Core and 215 CPE physical links, a ring backbone with
// redundant hubs, multi-homed customer sites, and 26 multi-link adjacency
// pairs. All structural knobs are parameters so tests can build small
// instances.
#pragma once

#include <cstdint>

#include "src/common/rng.hpp"
#include "src/topology/topology.hpp"

namespace netfail {

struct TopologyParams {
  // Router census (paper Table 1).
  int core_routers = 60;
  int cpe_routers = 175;
  int customers = 120;  // CENIC serves ~120 institutions

  // Link census (paper Table 1: 84 Core + 215 CPE IS-IS links).
  int core_links = 84;
  int cpe_links = 215;

  // Multi-link adjacencies (paper sect. 3.4: 26 device pairs; members are
  // ~20% of all physical links).
  int multilink_pairs_core = 16;
  int multilink_pairs_cpe = 10;

  std::uint64_t seed = 0x13121973;

  /// Shrink everything by an integer factor (for unit tests).
  TopologyParams scaled_down(int factor) const;
};

/// Build a topology; aborts if the parameters are infeasible (e.g. fewer
/// core links than needed for a connected ring).
Topology generate_topology(const TopologyParams& params);

/// Convenience: the default CENIC-scale topology used by all benchmarks.
inline Topology generate_cenic_topology() {
  return generate_topology(TopologyParams{});
}

}  // namespace netfail
