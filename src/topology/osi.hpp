// OSI addressing for IS-IS: 6-byte system identifiers and NET rendering.
//
// LSPs identify routers by system ID; syslog identifies them by hostname.
// Bridging the two naming schemes (via the dynamic-hostname TLV and mined
// configs) is a core step of the paper's matching methodology (sect. 3.4).
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>

#include "src/common/result.hpp"

namespace netfail {

class OsiSystemId {
 public:
  constexpr OsiSystemId() = default;
  explicit constexpr OsiSystemId(std::array<std::uint8_t, 6> bytes) : b_(bytes) {}

  /// Deterministic system ID from a dense router index, BCD-style like the
  /// common practice of embedding a loopback IP: index 7 with base
  /// 192.168.1.0 -> 1921.6800.1007-ish encoding.
  static OsiSystemId from_index(std::uint32_t index);

  const std::array<std::uint8_t, 6>& bytes() const { return b_; }

  /// Canonical IS-IS rendering: three dot-separated 16-bit hex groups,
  /// e.g. "1921.6800.1007".
  std::string to_string() const;
  static Result<OsiSystemId> parse(std::string_view s);

  /// Full NET with area 49.0001 and NSEL 00: "49.0001.xxxx.xxxx.xxxx.00".
  std::string to_net_string() const;

  constexpr auto operator<=>(const OsiSystemId&) const = default;

 private:
  std::array<std::uint8_t, 6> b_{};
};

}  // namespace netfail

namespace std {
template <>
struct hash<netfail::OsiSystemId> {
  size_t operator()(const netfail::OsiSystemId& id) const noexcept {
    std::uint64_t v = 0;
    for (std::uint8_t b : id.bytes()) v = (v << 8) | b;
    // splitmix64 finalizer: a fixed, library-independent mix — the
    // determinism rule bans std::hash (unspecified value) even here, so
    // container behavior cannot drift across standard libraries.
    v ^= v >> 30;
    v *= 0xbf58476d1ce4e5b9ULL;
    v ^= v >> 27;
    v *= 0x94d049bb133111ebULL;
    v ^= v >> 31;
    return static_cast<size_t>(v);
  }
};
}  // namespace std
