#include "src/topology/generator.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "src/common/assert.hpp"
#include "src/common/strfmt.hpp"

namespace netfail {
namespace {

// California POP codes, CENIC-style.
const char* const kCities[] = {"lax", "sac", "svl", "fre", "slo",
                               "sdg", "riv", "oak", "tus", "bak"};
constexpr int kCityCount = static_cast<int>(std::size(kCities));

/// Allocates /31 link subnets sequentially out of 137.164.0.0/16.
class SubnetAllocator {
 public:
  Ipv4Prefix next() {
    const Ipv4Prefix p{Ipv4Address{137, 164, static_cast<std::uint8_t>(next_ >> 8),
                                   static_cast<std::uint8_t>(next_ & 0xff)},
                       31};
    next_ += 2;
    NETFAIL_ASSERT(next_ < 0x10000, "link subnet space exhausted");
    return p;
  }

 private:
  std::uint32_t next_ = 0;
};

/// Per-router interface-name factory; keeps slot/port counters so names are
/// unique and look like real IOS / IOS-XR interface names.
class InterfaceNamer {
 public:
  explicit InterfaceNamer(std::size_t router_count) : counters_(router_count) {}

  std::string next(const Topology& topo, RouterId r) {
    const unsigned n = counters_[r.index()]++;
    if (topo.router(r).os == RouterOs::kIosXr) {
      return strformat("TenGigE0/%u/0/%u", n / 4, n % 4);
    }
    return strformat("GigabitEthernet0/%u", n);
  }

 private:
  std::vector<unsigned> counters_;
};

}  // namespace

TopologyParams TopologyParams::scaled_down(int factor) const {
  NETFAIL_ASSERT(factor >= 1, "scale factor must be >= 1");
  TopologyParams p = *this;
  p.core_routers = std::max(4, core_routers / factor);
  p.cpe_routers = std::max(4, cpe_routers / factor);
  p.customers = std::max(3, customers / factor);
  // Keep the same structural relationships the full-size generator relies on.
  p.multilink_pairs_core = std::min(multilink_pairs_core / factor, p.core_routers / 2);
  p.multilink_pairs_cpe = std::min(multilink_pairs_cpe / factor, p.cpe_routers / 4);
  p.core_links = p.core_routers + p.multilink_pairs_core + 1;
  p.cpe_links = p.cpe_routers + p.multilink_pairs_cpe + p.cpe_routers / 8;
  return p;
}

Topology generate_topology(const TopologyParams& params) {
  NETFAIL_ASSERT(params.core_routers >= 3, "need at least a 3-router ring");
  NETFAIL_ASSERT(params.cpe_routers >= 1, "need at least one CPE router");
  NETFAIL_ASSERT(params.customers >= 1 && params.customers <= params.cpe_routers,
                 "customer count must be in [1, cpe_routers]");

  Rng rng(params.seed);
  Topology topo;
  SubnetAllocator subnets;

  // ---- Core routers: a ring through the POP cities. -------------------------
  std::vector<RouterId> core;
  core.reserve(static_cast<std::size_t>(params.core_routers));
  std::vector<int> city_seq(static_cast<std::size_t>(params.core_routers));
  for (int i = 0; i < params.core_routers; ++i) {
    // Consecutive ring positions stay in the same city for a few routers so
    // the ring looks like POP-to-POP spans.
    city_seq[static_cast<std::size_t>(i)] = (i * kCityCount) / params.core_routers;
  }
  std::vector<int> per_city_counter(kCityCount, 0);
  for (int i = 0; i < params.core_routers; ++i) {
    const int city = city_seq[static_cast<std::size_t>(i)];
    const std::string name =
        strformat("%s-core-%d", kCities[city], ++per_city_counter[city]);
    core.push_back(topo.add_router(name, RouterClass::kCore, RouterOs::kIosXr));
  }

  InterfaceNamer namer(static_cast<std::size_t>(params.core_routers) +
                       static_cast<std::size_t>(params.cpe_routers));

  auto core_metric = [&rng] {
    return static_cast<std::uint32_t>(5 * rng.uniform_int(2, 10));
  };

  // Ring links.
  int core_links_made = 0;
  for (int i = 0; i < params.core_routers; ++i) {
    const RouterId a = core[static_cast<std::size_t>(i)];
    const RouterId b = core[static_cast<std::size_t>((i + 1) % params.core_routers)];
    topo.add_link(a, namer.next(topo, a), b, namer.next(topo, b), subnets.next(),
                  core_metric());
    ++core_links_made;
  }

  // Multi-link adjacencies between ring-adjacent core pairs: promote the
  // existing single link into a group and add parallel members.
  NETFAIL_ASSERT(params.multilink_pairs_core <= params.core_routers,
                 "too many core multi-link pairs");
  const int budget_after_ring = params.core_links - core_links_made;
  NETFAIL_ASSERT(budget_after_ring >= params.multilink_pairs_core,
                 "core link budget cannot fund multi-link pairs");
  // Every multi-link pair gets one extra member; the first few get two, so
  // multi-link member links approach the paper's ~20% of all links.
  int triple_pairs = std::min(params.multilink_pairs_core / 4,
                              budget_after_ring - params.multilink_pairs_core);
  if (triple_pairs < 0) triple_pairs = 0;
  for (int p = 0; p < params.multilink_pairs_core; ++p) {
    // Spread the chosen pairs around the ring.
    const int i = params.multilink_pairs_core == 0
                      ? 0
                      : (p * params.core_routers) / params.multilink_pairs_core;
    const RouterId a = core[static_cast<std::size_t>(i)];
    const RouterId b = core[static_cast<std::size_t>((i + 1) % params.core_routers)];
    const std::vector<LinkId> existing = topo.links_between(a, b);
    NETFAIL_ASSERT(!existing.empty(), "ring link missing");
    if (topo.link(existing.front()).group.valid()) continue;  // pair reused
    const AdjacencyGroupId group = topo.new_adjacency_group();
    topo.assign_group(existing.front(), group);
    const std::uint32_t metric = topo.link(existing.front()).metric;
    const int members_to_add = 1 + (p < triple_pairs ? 1 : 0);
    for (int m = 0; m < members_to_add; ++m) {
      topo.add_link(a, namer.next(topo, a), b, namer.next(topo, b), subnets.next(),
                    metric, group);
      ++core_links_made;
    }
  }

  // Chords: connect distant ring positions for redundancy.
  int chord_attempts = 0;
  while (core_links_made < params.core_links && chord_attempts < 10000) {
    ++chord_attempts;
    const int i = static_cast<int>(rng.uniform_int(0, params.core_routers - 1));
    const int span = static_cast<int>(
        rng.uniform_int(params.core_routers / 4, params.core_routers / 2));
    const int j = (i + span) % params.core_routers;
    const RouterId a = core[static_cast<std::size_t>(i)];
    const RouterId b = core[static_cast<std::size_t>(j)];
    if (a == b || !topo.links_between(a, b).empty()) continue;
    topo.add_link(a, namer.next(topo, a), b, namer.next(topo, b), subnets.next(),
                  core_metric());
    ++core_links_made;
  }
  NETFAIL_ASSERT(core_links_made == params.core_links,
                 "could not place all core links");

  // ---- Customers and CPE routers. -------------------------------------------
  std::vector<CustomerId> customers;
  customers.reserve(static_cast<std::size_t>(params.customers));
  for (int c = 0; c < params.customers; ++c) {
    customers.push_back(topo.add_customer(strformat("edu%03d", c)));
  }

  // Distribute CPE routers over customers: the first (cpe - customers) in
  // round-robin get a second router.
  std::vector<RouterId> cpe;
  cpe.reserve(static_cast<std::size_t>(params.cpe_routers));
  std::vector<int> routers_of_customer(static_cast<std::size_t>(params.customers), 0);
  for (int r = 0; r < params.cpe_routers; ++r) {
    const int c = r % params.customers;
    const int n = ++routers_of_customer[static_cast<std::size_t>(c)];
    const std::string name = strformat("edu%03d-gw-%d", c, n);
    cpe.push_back(topo.add_router(name, RouterClass::kCpe, RouterOs::kIos,
                                  customers[static_cast<std::size_t>(c)]));
  }

  // Uplinks: every CPE router homes to a deterministic-random core router.
  int cpe_links_made = 0;
  std::vector<RouterId> uplink_of(cpe.size());
  for (std::size_t r = 0; r < cpe.size(); ++r) {
    const RouterId hub =
        core[static_cast<std::size_t>(rng.uniform_int(0, params.core_routers - 1))];
    uplink_of[r] = hub;
    topo.add_link(cpe[r], namer.next(topo, cpe[r]), hub, namer.next(topo, hub),
                  subnets.next(), 100);
    ++cpe_links_made;
  }

  // Multi-link CPE adjacencies: parallel second link to the same hub.
  NETFAIL_ASSERT(params.multilink_pairs_cpe <= params.cpe_routers,
                 "too many CPE multi-link pairs");
  for (int p = 0; p < params.multilink_pairs_cpe &&
                  cpe_links_made < params.cpe_links;
       ++p) {
    const std::size_t r = static_cast<std::size_t>(p) *
                          (cpe.size() / std::max<std::size_t>(
                                            1, static_cast<std::size_t>(
                                                   params.multilink_pairs_cpe)));
    const std::vector<LinkId> existing = topo.links_between(cpe[r], uplink_of[r]);
    NETFAIL_ASSERT(!existing.empty(), "CPE uplink missing");
    if (topo.link(existing.front()).group.valid()) continue;  // pair reused
    const AdjacencyGroupId group = topo.new_adjacency_group();
    topo.assign_group(existing.front(), group);
    topo.add_link(cpe[r], namer.next(topo, cpe[r]), uplink_of[r],
                  namer.next(topo, uplink_of[r]), subnets.next(), 100, group);
    ++cpe_links_made;
  }

  // Dual-homing: remaining CPE budget becomes second uplinks to a different
  // core router. Single-router customers get the redundancy first — they are
  // the ones a lone uplink failure would isolate ("most customers are
  // multi-homed", paper sect. 4.4).
  std::vector<std::size_t> dual_candidates;
  for (std::size_t r = 0; r < cpe.size(); ++r) {
    const Router& router = topo.router(cpe[r]);
    if (topo.customer(router.customer).routers.size() == 1) {
      dual_candidates.push_back(r);
    }
  }
  for (std::size_t r = 0; r < cpe.size(); ++r) {
    const Router& router = topo.router(cpe[r]);
    if (topo.customer(router.customer).routers.size() > 1) {
      dual_candidates.push_back(r);
    }
  }
  std::size_t dual_cursor = 0;
  while (cpe_links_made < params.cpe_links) {
    NETFAIL_ASSERT(dual_cursor < dual_candidates.size(),
                   "CPE link budget exceeds dual-home capacity");
    const std::size_t r = dual_candidates[dual_cursor++];
    RouterId hub2;
    do {
      hub2 = core[static_cast<std::size_t>(rng.uniform_int(0, params.core_routers - 1))];
    } while (hub2 == uplink_of[r]);
    topo.add_link(cpe[r], namer.next(topo, cpe[r]), hub2, namer.next(topo, hub2),
                  subnets.next(), 100);
    ++cpe_links_made;
  }

  NETFAIL_ASSERT(topo.link_count(RouterClass::kCore) ==
                     static_cast<std::size_t>(params.core_links),
                 "core link census mismatch");
  NETFAIL_ASSERT(topo.link_count(RouterClass::kCpe) ==
                     static_cast<std::size_t>(params.cpe_links),
                 "CPE link census mismatch");
  return topo;
}

}  // namespace netfail
