// IPv4 addresses and prefixes.
//
// CENIC numbers every point-to-point link out of a /16 using /31 subnets
// (RFC 3021), which is what makes the IS-IS "extended IP reachability"
// field a unique link identifier in the paper. We reproduce that scheme.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "src/common/result.hpp"

namespace netfail {

class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  explicit constexpr Ipv4Address(std::uint32_t host_order) : v_(host_order) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : v_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
           (std::uint32_t{c} << 8) | d) {}

  constexpr std::uint32_t value() const { return v_; }
  std::string to_string() const;

  static Result<Ipv4Address> parse(std::string_view s);

  constexpr Ipv4Address operator+(std::uint32_t off) const { return Ipv4Address{v_ + off}; }
  constexpr auto operator<=>(const Ipv4Address&) const = default;

 private:
  std::uint32_t v_ = 0;
};

class Ipv4Prefix {
 public:
  constexpr Ipv4Prefix() = default;
  /// `length` in [0, 32]; host bits of `network` are masked off.
  Ipv4Prefix(Ipv4Address network, int length);

  Ipv4Address network() const { return network_; }
  int length() const { return length_; }
  std::uint32_t mask() const;
  /// Dotted-decimal netmask, "255.255.255.254" for a /31.
  std::string netmask_string() const;
  bool contains(Ipv4Address a) const;
  std::string to_string() const;  // "137.164.0.0/31"

  static Result<Ipv4Prefix> parse(std::string_view s);
  /// Build the /31 containing `a` (used to pair interfaces into links).
  static Ipv4Prefix slash31_of(Ipv4Address a) { return Ipv4Prefix{a, 31}; }

  auto operator<=>(const Ipv4Prefix&) const = default;

 private:
  Ipv4Address network_;
  int length_ = 0;
};

}  // namespace netfail

namespace std {
template <>
struct hash<netfail::Ipv4Prefix> {
  size_t operator()(const netfail::Ipv4Prefix& p) const noexcept {
    std::uint64_t v =
        (std::uint64_t{p.network().value()} << 6) | static_cast<unsigned>(p.length());
    // splitmix64 finalizer: a fixed, library-independent mix — the
    // determinism rule bans std::hash (unspecified value) even here, so
    // container behavior cannot drift across standard libraries.
    v ^= v >> 30;
    v *= 0xbf58476d1ce4e5b9ULL;
    v ^= v >> 27;
    v *= 0x94d049bb133111ebULL;
    v ^= v >> 31;
    return static_cast<size_t>(v);
  }
};
}  // namespace std
