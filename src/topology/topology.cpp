#include "src/topology/topology.hpp"

#include <algorithm>

#include "src/common/assert.hpp"

namespace netfail {

std::string make_link_name(std::string_view host_a, std::string_view if_a,
                           std::string_view host_b, std::string_view if_b) {
  std::string ea = std::string(host_a) + ":" + std::string(if_a);
  std::string eb = std::string(host_b) + ":" + std::string(if_b);
  if (eb < ea) ea.swap(eb);
  return ea + "|" + eb;
}

RouterId Topology::add_router(std::string hostname, RouterClass cls,
                              RouterOs os, CustomerId customer) {
  const Symbol host(hostname);
  NETFAIL_ASSERT(!by_hostname_.contains(host), "duplicate hostname");
  const RouterId id{static_cast<std::uint32_t>(routers_.size())};
  Router r;
  r.id = id;
  r.hostname = host;
  r.cls = cls;
  r.os = os;
  r.system_id = OsiSystemId::from_index(id.value());
  r.loopback = Ipv4Address{137, 164, static_cast<std::uint8_t>(200 + id.value() / 256),
                           static_cast<std::uint8_t>(id.value() % 256)};
  r.customer = customer;
  by_hostname_.emplace(r.hostname, id);
  by_system_id_.emplace(r.system_id, id);
  routers_.push_back(std::move(r));
  adjacency_.emplace_back();
  if (customer.valid()) {
    NETFAIL_ASSERT(customer.index() < customers_.size(), "unknown customer");
    customers_[customer.index()].routers.push_back(id);
  }
  return id;
}

CustomerId Topology::add_customer(std::string name) {
  const CustomerId id{static_cast<std::uint32_t>(customers_.size())};
  customers_.push_back(Customer{id, std::move(name), {}});
  return id;
}

AdjacencyGroupId Topology::new_adjacency_group() {
  const AdjacencyGroupId id{static_cast<std::uint32_t>(groups_.size())};
  groups_.emplace_back();
  return id;
}

void Topology::assign_group(LinkId link, AdjacencyGroupId group) {
  NETFAIL_ASSERT(link.valid() && link.index() < links_.size(), "bad link id");
  NETFAIL_ASSERT(group.valid() && group.index() < groups_.size(), "bad group id");
  NETFAIL_ASSERT(!links_[link.index()].group.valid(), "link already grouped");
  links_[link.index()].group = group;
  groups_[group.index()].push_back(link);
}

LinkId Topology::add_link(RouterId a, std::string if_name_a, RouterId b,
                          std::string if_name_b, Ipv4Prefix subnet,
                          std::uint32_t metric, AdjacencyGroupId group) {
  NETFAIL_ASSERT(a != b, "self-link");
  NETFAIL_ASSERT(subnet.length() == 31, "links are numbered from /31 subnets");
  NETFAIL_ASSERT(!by_subnet_.contains(subnet), "subnet already in use");

  // Canonicalize endpoint order by (hostname, interface name).
  const std::string ea =
      routers_[a.index()].hostname.str() + ":" + if_name_a;
  const std::string eb =
      routers_[b.index()].hostname.str() + ":" + if_name_b;
  if (eb < ea) {
    std::swap(a, b);
    std::swap(if_name_a, if_name_b);
  }

  const LinkId id{static_cast<std::uint32_t>(links_.size())};
  const InterfaceId ia{static_cast<std::uint32_t>(interfaces_.size())};
  interfaces_.push_back(
      Interface{ia, a, std::move(if_name_a), subnet.network(), id});
  const InterfaceId ib{static_cast<std::uint32_t>(interfaces_.size())};
  interfaces_.push_back(
      Interface{ib, b, std::move(if_name_b), subnet.network() + 1, id});
  routers_[a.index()].interfaces.push_back(ia);
  routers_[b.index()].interfaces.push_back(ib);

  Link l;
  l.id = id;
  l.router_a = a;
  l.if_a = ia;
  l.router_b = b;
  l.if_b = ib;
  l.cls = (routers_[a.index()].cls == RouterClass::kCpe ||
           routers_[b.index()].cls == RouterClass::kCpe)
              ? RouterClass::kCpe
              : RouterClass::kCore;
  l.subnet = subnet;
  l.metric = metric;
  l.group = group;
  links_.push_back(l);
  by_subnet_.emplace(subnet, id);
  adjacency_[a.index()].emplace_back(b, id);
  adjacency_[b.index()].emplace_back(a, id);
  if (group.valid()) {
    NETFAIL_ASSERT(group.index() < groups_.size(), "unknown adjacency group");
    groups_[group.index()].push_back(id);
  }
  return id;
}

const Router& Topology::router(RouterId id) const {
  NETFAIL_ASSERT(id.valid() && id.index() < routers_.size(), "bad router id");
  return routers_[id.index()];
}

const Interface& Topology::interface(InterfaceId id) const {
  NETFAIL_ASSERT(id.valid() && id.index() < interfaces_.size(), "bad interface id");
  return interfaces_[id.index()];
}

const Link& Topology::link(LinkId id) const {
  NETFAIL_ASSERT(id.valid() && id.index() < links_.size(), "bad link id");
  return links_[id.index()];
}

const Customer& Topology::customer(CustomerId id) const {
  NETFAIL_ASSERT(id.valid() && id.index() < customers_.size(), "bad customer id");
  return customers_[id.index()];
}

std::size_t Topology::router_count(RouterClass cls) const {
  return static_cast<std::size_t>(std::count_if(
      routers_.begin(), routers_.end(),
      [cls](const Router& r) { return r.cls == cls; }));
}

std::size_t Topology::link_count(RouterClass cls) const {
  return static_cast<std::size_t>(std::count_if(
      links_.begin(), links_.end(),
      [cls](const Link& l) { return l.cls == cls; }));
}

std::optional<RouterId> Topology::find_router(std::string_view hostname) const {
  // sym::find never grows the table, so lookups of unknown names stay cheap.
  const Symbol host = sym::find(hostname);
  if (!host.valid()) return std::nullopt;
  auto it = by_hostname_.find(host);
  if (it == by_hostname_.end()) return std::nullopt;
  return it->second;
}

std::optional<RouterId> Topology::find_router(const OsiSystemId& system_id) const {
  auto it = by_system_id_.find(system_id);
  if (it == by_system_id_.end()) return std::nullopt;
  return it->second;
}

std::optional<InterfaceId> Topology::find_interface(
    RouterId router, std::string_view if_name) const {
  for (InterfaceId iid : routers_[router.index()].interfaces) {
    if (interfaces_[iid.index()].name == if_name) return iid;
  }
  return std::nullopt;
}

std::optional<LinkId> Topology::find_link_by_subnet(const Ipv4Prefix& subnet) const {
  auto it = by_subnet_.find(subnet);
  if (it == by_subnet_.end()) return std::nullopt;
  return it->second;
}

std::vector<LinkId> Topology::links_between(RouterId a, RouterId b) const {
  std::vector<LinkId> out;
  for (const auto& [peer, link] : adjacency_[a.index()]) {
    if (peer == b) out.push_back(link);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string Topology::link_name(LinkId id) const {
  const Link& l = link(id);
  // Endpoints are already canonically ordered by add_link.
  std::string out;
  out.reserve(64);
  out.append(routers_[l.router_a.index()].hostname.view());
  out.push_back(':');
  out.append(interfaces_[l.if_a.index()].name.view());
  out.push_back('|');
  out.append(routers_[l.router_b.index()].hostname.view());
  out.push_back(':');
  out.append(interfaces_[l.if_b.index()].name.view());
  return out;
}

RouterId Topology::link_peer(LinkId id, RouterId from) const {
  const Link& l = link(id);
  if (l.router_a == from) return l.router_b;
  NETFAIL_ASSERT(l.router_b == from, "router not on link");
  return l.router_a;
}

const std::vector<std::pair<RouterId, LinkId>>& Topology::adjacency(
    RouterId id) const {
  NETFAIL_ASSERT(id.valid() && id.index() < adjacency_.size(), "bad router id");
  return adjacency_[id.index()];
}

std::size_t Topology::multilink_member_count() const {
  std::size_t n = 0;
  for (const auto& g : groups_) n += g.size();
  return n;
}

}  // namespace netfail
