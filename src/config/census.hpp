// The link census: the common naming layer joining syslog and IS-IS.
//
// Syslog names links by (hostname, interface); IS-IS LSPs name them by
// (system-id, system-id) or by /31 subnet. The census — mined from the
// config archive — maps all three to one canonical link record, exactly the
// "(host1:port1, host2:port2)" convention of the paper (sect. 3.4).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/ids.hpp"
#include "src/common/sym.hpp"
#include "src/common/time.hpp"
#include "src/topology/ipv4.hpp"
#include "src/topology/osi.hpp"
#include "src/topology/topology.hpp"

namespace netfail {

struct CensusEndpoint {
  Symbol host;
  Symbol iface;
  Ipv4Address address;
};

struct CensusLink {
  LinkId id;  // dense index within this census
  std::string name;  // canonical "hostA:ifA|hostB:ifB"
  CensusEndpoint a;  // endpoint that sorts first
  CensusEndpoint b;
  Ipv4Prefix subnet;  // the /31
  TimeRange lifetime;  // when the link existed, per the archive
  RouterClass cls = RouterClass::kCore;
  /// True when more than one physical link joins the same router pair;
  /// IS reachability cannot tell the members apart (paper sect. 3.4).
  bool multilink = false;
};

class LinkCensus {
 public:
  /// Add a link; endpoints may be given in either order.
  LinkId add_link(CensusEndpoint e1, CensusEndpoint e2, Ipv4Prefix subnet,
                  TimeRange lifetime, RouterClass cls);

  void set_hostname(const OsiSystemId& system_id, Symbol hostname);

  /// Recompute the multilink flags; call once after all links are added.
  void finalize();

  // -- lookups ---------------------------------------------------------------
  const CensusLink& link(LinkId id) const;
  std::size_t size() const { return links_.size(); }
  const std::vector<CensusLink>& links() const { return links_; }

  std::optional<LinkId> find_by_name(std::string_view name) const;
  std::optional<LinkId> find_by_subnet(const Ipv4Prefix& subnet) const;
  std::optional<LinkId> find_by_interface(Symbol host, Symbol iface) const;
  /// All links between two hosts (order-insensitive); >1 means multi-link.
  /// Returns a reference into the census (empty vector for unknown pairs);
  /// valid until the next add_link.
  const std::vector<LinkId>& find_between_hosts(Symbol host1,
                                                Symbol host2) const;
  /// Hostname symbol for a system id; the invalid symbol when unknown.
  Symbol hostname_of(const OsiSystemId& system_id) const;

  std::size_t count(RouterClass cls) const;
  std::size_t multilink_member_count() const;

 private:
  /// Directional (host, iface) packed into one 64-bit key.
  static std::uint64_t iface_key(Symbol host, Symbol iface) {
    return (static_cast<std::uint64_t>(host.value()) << 32) | iface.value();
  }

  std::vector<CensusLink> links_;
  // Ordered + transparent: name lookups are cold (queries, test setup), and
  // std::less<> takes string_views without materializing a key — the
  // hot-path-string-map lint rule bans the hashed alternative here.
  std::map<std::string, LinkId, std::less<>> by_name_;
  std::unordered_map<Ipv4Prefix, LinkId> by_subnet_;
  std::unordered_map<std::uint64_t, LinkId> by_interface_;  // iface_key
  // sym::pair_key(hostA, hostB) -> links, lexicographically normalized.
  std::unordered_map<std::uint64_t, std::vector<LinkId>> by_host_pair_;
  std::unordered_map<OsiSystemId, Symbol> hostname_of_;
};

/// Build the census straight from a topology (bypassing the config-mining
/// text round-trip); used by tests as ground truth to validate the miner.
LinkCensus census_from_topology(const Topology& topo, TimeRange lifetime);

}  // namespace netfail
