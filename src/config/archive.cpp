#include "src/config/archive.hpp"

#include "src/common/assert.hpp"
#include "src/config/render.hpp"

namespace netfail {

ConfigArchive generate_archive(const Topology& topo, TimeRange period,
                               const ArchiveParams& params) {
  NETFAIL_ASSERT(!period.empty(), "empty archive period");
  NETFAIL_ASSERT(params.mean_revision_interval > Duration::seconds(0),
                 "revision interval must be positive");
  Rng rng(params.seed);
  ConfigArchive archive;
  for (const Router& r : topo.routers()) {
    // First snapshot lands shortly after the period opens; subsequent ones
    // follow an exponential inter-snapshot process (operators commit config
    // changes at irregular times).
    TimePoint t =
        period.begin + Duration::from_seconds_f(rng.exponential(
                           params.mean_revision_interval.seconds_f() / 4));
    if (t >= period.end) t = period.begin;  // guarantee one snapshot per router
    while (t < period.end) {
      archive.add(ConfigFile{r.hostname.str(), t, render_config(topo, r.id, t)});
      t += Duration::from_seconds_f(
          rng.exponential(params.mean_revision_interval.seconds_f()));
    }
  }
  return archive;
}

}  // namespace netfail
