#include "src/config/census.hpp"

#include <algorithm>

#include "src/common/assert.hpp"

namespace netfail {

LinkId LinkCensus::add_link(CensusEndpoint e1, CensusEndpoint e2,
                            Ipv4Prefix subnet, TimeRange lifetime,
                            RouterClass cls) {
  NETFAIL_ASSERT(subnet.length() == 31, "census links use /31 subnets");
  // Canonical endpoint order (lexicographic on "host:iface").
  const std::string k1 = e1.host.str() + ":" + e1.iface.str();
  const std::string k2 = e2.host.str() + ":" + e2.iface.str();
  if (k2 < k1) std::swap(e1, e2);

  const LinkId id{static_cast<std::uint32_t>(links_.size())};
  CensusLink l;
  l.id = id;
  l.name = make_link_name(e1.host.view(), e1.iface.view(), e2.host.view(),
                          e2.iface.view());
  l.a = e1;
  l.b = e2;
  l.subnet = subnet;
  l.lifetime = lifetime;
  l.cls = cls;
  NETFAIL_ASSERT(!by_name_.contains(l.name), "duplicate census link name");
  NETFAIL_ASSERT(!by_subnet_.contains(subnet), "duplicate census subnet");
  by_name_.emplace(l.name, id);
  by_subnet_.emplace(subnet, id);
  by_interface_.emplace(iface_key(l.a.host, l.a.iface), id);
  by_interface_.emplace(iface_key(l.b.host, l.b.iface), id);
  by_host_pair_[sym::pair_key(l.a.host, l.b.host)].push_back(id);
  links_.push_back(std::move(l));
  return id;
}

void LinkCensus::set_hostname(const OsiSystemId& system_id, Symbol hostname) {
  hostname_of_[system_id] = hostname;
}

void LinkCensus::finalize() {
  for (auto& [key, ids] : by_host_pair_) {
    std::sort(ids.begin(), ids.end());
    if (ids.size() > 1) {
      for (LinkId id : ids) links_[id.index()].multilink = true;
    }
  }
}

const CensusLink& LinkCensus::link(LinkId id) const {
  NETFAIL_ASSERT(id.valid() && id.index() < links_.size(), "bad census link id");
  return links_[id.index()];
}

std::optional<LinkId> LinkCensus::find_by_name(std::string_view name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

std::optional<LinkId> LinkCensus::find_by_subnet(const Ipv4Prefix& subnet) const {
  auto it = by_subnet_.find(subnet);
  if (it == by_subnet_.end()) return std::nullopt;
  return it->second;
}

std::optional<LinkId> LinkCensus::find_by_interface(Symbol host,
                                                    Symbol iface) const {
  if (!host.valid() || !iface.valid()) return std::nullopt;
  auto it = by_interface_.find(iface_key(host, iface));
  if (it == by_interface_.end()) return std::nullopt;
  return it->second;
}

namespace {
const std::vector<LinkId> kNoLinks;
}  // namespace

const std::vector<LinkId>& LinkCensus::find_between_hosts(Symbol host1,
                                                          Symbol host2) const {
  if (!host1.valid() || !host2.valid()) return kNoLinks;
  auto it = by_host_pair_.find(sym::pair_key(host1, host2));
  if (it == by_host_pair_.end()) return kNoLinks;
  return it->second;
}

Symbol LinkCensus::hostname_of(const OsiSystemId& system_id) const {
  auto it = hostname_of_.find(system_id);
  if (it == hostname_of_.end()) return Symbol::invalid();
  return it->second;
}

std::size_t LinkCensus::count(RouterClass cls) const {
  return static_cast<std::size_t>(
      std::count_if(links_.begin(), links_.end(),
                    [cls](const CensusLink& l) { return l.cls == cls; }));
}

std::size_t LinkCensus::multilink_member_count() const {
  return static_cast<std::size_t>(
      std::count_if(links_.begin(), links_.end(),
                    [](const CensusLink& l) { return l.multilink; }));
}

LinkCensus census_from_topology(const Topology& topo, TimeRange lifetime) {
  LinkCensus census;
  for (const Link& l : topo.links()) {
    const Router& ra = topo.router(l.router_a);
    const Router& rb = topo.router(l.router_b);
    const Interface& ia = topo.interface(l.if_a);
    const Interface& ib = topo.interface(l.if_b);
    census.add_link(CensusEndpoint{ra.hostname, ia.name, ia.address},
                    CensusEndpoint{rb.hostname, ib.name, ib.address}, l.subnet,
                    lifetime, l.cls);
  }
  for (const Router& r : topo.routers()) {
    census.set_hostname(r.system_id, r.hostname);
  }
  census.finalize();
  return census;
}

}  // namespace netfail
