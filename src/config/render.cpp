#include "src/config/render.hpp"

#include "src/common/strfmt.hpp"

namespace netfail {
namespace {

/// "Link to <peer-host> <peer-interface>" — operators describe the far end.
std::string link_description(const Topology& topo, const Link& l, RouterId self) {
  const bool self_is_a = l.router_a == self;
  const Router& peer = topo.router(self_is_a ? l.router_b : l.router_a);
  const Interface& peer_if = topo.interface(self_is_a ? l.if_b : l.if_a);
  return "Link to " + peer.hostname + " " + peer_if.name;
}

std::string render_ios(const Topology& topo, const Router& r, TimePoint as_of) {
  std::string out;
  out += "!\n";
  out += "! Last configuration change at " + as_of.to_string() + " UTC\n";
  out += "!\n";
  out += "version 12.2\n";
  out += "service timestamps log datetime msec\n";
  out += "hostname " + r.hostname + "\n";
  out += "!\n";
  out += "interface Loopback0\n";
  out += " ip address " + r.loopback.to_string() + " 255.255.255.255\n";
  out += "!\n";
  for (InterfaceId iid : r.interfaces) {
    const Interface& intf = topo.interface(iid);
    const Link& l = topo.link(intf.link);
    out += "interface " + intf.name + "\n";
    out += " description " + link_description(topo, l, r.id) + "\n";
    out += " ip address " + intf.address.to_string() + " " +
           l.subnet.netmask_string() + "\n";
    out += " ip router isis cenic\n";
    out += strformat(" isis metric %u\n", l.metric);
    out += "!\n";
  }
  out += "router isis cenic\n";
  out += " net " + r.system_id.to_net_string() + "\n";
  out += " is-type level-2-only\n";
  out += " metric-style wide\n";
  out += " log-adjacency-changes\n";
  out += "!\n";
  out += "logging trap informational\n";
  out += "logging 137.164.200.10\n";
  out += "end\n";
  return out;
}

std::string render_iosxr(const Topology& topo, const Router& r, TimePoint as_of) {
  std::string out;
  out += "!! IOS XR Configuration\n";
  out += "!! Last configuration change at " + as_of.to_string() + " UTC\n";
  out += "hostname " + r.hostname + "\n";
  out += "logging trap informational\n";
  out += "logging 137.164.200.10 vrf default\n";
  out += "interface Loopback0\n";
  out += " ipv4 address " + r.loopback.to_string() + " 255.255.255.255\n";
  out += "!\n";
  for (InterfaceId iid : r.interfaces) {
    const Interface& intf = topo.interface(iid);
    const Link& l = topo.link(intf.link);
    out += "interface " + intf.name + "\n";
    out += " description " + link_description(topo, l, r.id) + "\n";
    out += " ipv4 address " + intf.address.to_string() + " " +
           l.subnet.netmask_string() + "\n";
    out += "!\n";
  }
  out += "router isis cenic\n";
  out += " net " + r.system_id.to_net_string() + "\n";
  out += " is-type level-2-only\n";
  out += " log adjacency changes\n";
  out += " address-family ipv4 unicast\n";
  out += "  metric-style wide\n";
  out += " !\n";
  for (InterfaceId iid : r.interfaces) {
    const Interface& intf = topo.interface(iid);
    const Link& l = topo.link(intf.link);
    out += " interface " + intf.name + "\n";
    out += "  address-family ipv4 unicast\n";
    out += strformat("   metric %u\n", l.metric);
    out += "  !\n";
    out += " !\n";
  }
  out += "!\n";
  out += "end\n";
  return out;
}

}  // namespace

std::string render_config(const Topology& topo, RouterId router, TimePoint as_of) {
  const Router& r = topo.router(router);
  return r.os == RouterOs::kIosXr ? render_iosxr(topo, r, as_of)
                                  : render_ios(topo, r, as_of);
}

}  // namespace netfail
