// A configuration archive: periodic snapshots of every router's config.
//
// CENIC archives router configs continuously; the paper mined 11,623 files.
// We reproduce the pipeline by snapshotting each (synthetic) router on a
// weekly-ish cadence with per-router jitter across the study period.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/time.hpp"
#include "src/topology/topology.hpp"

namespace netfail {

struct ConfigFile {
  std::string router_hostname;
  TimePoint captured_at;
  std::string text;
};

class ConfigArchive {
 public:
  void add(ConfigFile file) { files_.push_back(std::move(file)); }
  const std::vector<ConfigFile>& files() const { return files_; }
  std::size_t size() const { return files_.size(); }

 private:
  std::vector<ConfigFile> files_;
};

struct ArchiveParams {
  /// Mean interval between successive snapshots of one router.
  Duration mean_revision_interval = Duration::days(8);
  std::uint64_t seed = 0x5ca1ab1e;
};

/// Snapshot every router of `topo` across `period`.
ConfigArchive generate_archive(const Topology& topo, TimeRange period,
                               const ArchiveParams& params = {});

}  // namespace netfail
