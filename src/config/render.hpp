// Router configuration rendering.
//
// The paper's matching methodology mines an archive of router config files
// to learn the network's links (sect. 3.4). We render realistic IOS and
// IOS-XR configuration text for every router so the miner has something
// faithful to parse: the pipeline goes topology -> text -> census, and the
// analysis only ever sees the census, exactly as in the paper.
#pragma once

#include <string>

#include "src/common/time.hpp"
#include "src/topology/topology.hpp"

namespace netfail {

/// Render the full configuration of `router` as of `as_of`.
std::string render_config(const Topology& topo, RouterId router, TimePoint as_of);

}  // namespace netfail
