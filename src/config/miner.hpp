// Config mining: parse an archive of router configurations back into the
// link census (paper sect. 3.4, "we determine all of the links in the
// network by mining an archive of configuration files").
//
// The miner understands both classic-IOS ("ip address A M") and IOS-XR
// ("ipv4 address A M") interface stanzas plus the IS-IS "net" statement,
// pairs interfaces that share a /31, and derives per-link lifetimes from
// first/last appearance in the archive.
#pragma once

#include <cstddef>
#include <string_view>

#include "src/common/result.hpp"
#include "src/config/archive.hpp"
#include "src/config/census.hpp"

namespace netfail {

/// Everything extracted from one configuration file.
struct MinedConfig {
  std::string hostname;
  OsiSystemId system_id;
  bool has_system_id = false;
  struct MinedInterface {
    std::string name;
    Ipv4Address address;
    int prefix_length = 0;
  };
  std::vector<MinedInterface> interfaces;  // /31 link interfaces only
};

/// Parse one config file; tolerates unknown lines, fails only on files that
/// lack a hostname.
Result<MinedConfig> parse_config(std::string_view text);

struct MiningStats {
  std::size_t files_parsed = 0;
  std::size_t files_failed = 0;
  std::size_t endpoints = 0;
  /// /31 subnets with only one endpoint in the whole archive — these cannot
  /// be turned into links and are dropped (logged, per "no silent caps").
  std::size_t unpaired_subnets = 0;
};

struct MinerParams {
  /// Lifetime windows are padded by this much on each side (a link existed
  /// before its first and after its last snapshot), then clamped to `period`.
  Duration lifetime_slack = Duration::days(10);
  /// Classifier: hosts whose name contains this token are CPE routers.
  std::string cpe_host_token = "-gw-";
};

/// Mine the whole archive into a census.
LinkCensus mine_archive(const ConfigArchive& archive, TimeRange period,
                        const MinerParams& params = {},
                        MiningStats* stats = nullptr);

}  // namespace netfail
