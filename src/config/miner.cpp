#include "src/config/miner.hpp"

#include <algorithm>
#include <map>

#include "src/common/strfmt.hpp"

namespace netfail {
namespace {

/// Mask "255.255.255.254" -> 31; returns -1 for non-contiguous masks.
int prefix_length_of_mask(Ipv4Address mask) {
  const std::uint32_t m = mask.value();
  if (m == 0) return 0;
  const int len = 32 - __builtin_ctz(m);
  // Verify contiguity: the mask must be exactly `len` leading ones.
  if (m != (~std::uint32_t{0} << (32 - len))) return -1;
  return len;
}

}  // namespace

Result<MinedConfig> parse_config(std::string_view text) {
  MinedConfig out;
  std::string current_interface;  // empty when outside an interface stanza

  for (const std::string& raw : split(text, '\n')) {
    const std::string_view line = trim(raw);
    if (line.empty() || line[0] == '!') {
      // Comment or stanza separator. IOS-XR nests "interface" under
      // "router isis" too, so a bare "!" conservatively ends the stanza.
      if (line == "!") current_interface.clear();
      continue;
    }
    const std::vector<std::string> tok = split_whitespace(line);
    if (tok.empty()) continue;

    if (tok[0] == "hostname" && tok.size() >= 2) {
      out.hostname = tok[1];
      continue;
    }
    if (tok[0] == "interface" && tok.size() >= 2 && raw[0] != ' ') {
      // Top-level interface stanza (the indented "interface" lines inside
      // "router isis" on IOS-XR carry no addresses and are skipped by the
      // raw[0] check).
      current_interface = tok[1];
      continue;
    }
    if (tok[0] == "net" && tok.size() >= 2) {
      // "net 49.0001.xxxx.xxxx.xxxx.00": system id is the middle 12 digits.
      const std::vector<std::string> parts = split(tok[1], '.');
      if (parts.size() >= 5) {
        const std::string sysid =
            parts[parts.size() - 4] + "." + parts[parts.size() - 3] + "." +
            parts[parts.size() - 2];
        if (Result<OsiSystemId> r = OsiSystemId::parse(sysid)) {
          out.system_id = *r;
          out.has_system_id = true;
        }
      }
      continue;
    }
    const bool is_addr_line =
        tok.size() >= 3 && (tok[0] == "ip" || tok[0] == "ipv4") &&
        tok[1] == "address";
    if (is_addr_line && !current_interface.empty() && tok.size() >= 4) {
      const Result<Ipv4Address> addr = Ipv4Address::parse(tok[2]);
      const Result<Ipv4Address> mask = Ipv4Address::parse(tok[3]);
      if (!addr || !mask) continue;  // tolerate malformed lines
      const int len = prefix_length_of_mask(*mask);
      if (len == 31) {
        out.interfaces.push_back(
            MinedConfig::MinedInterface{current_interface, *addr, len});
      }
      continue;
    }
  }

  if (out.hostname.empty()) {
    return make_error(ErrorCode::kParseError, "config has no hostname line");
  }
  return out;
}

LinkCensus mine_archive(const ConfigArchive& archive, TimeRange period,
                        const MinerParams& params, MiningStats* stats) {
  MiningStats local;
  MiningStats& st = stats ? *stats : local;

  // Accumulate endpoints keyed by /31 subnet. std::map keeps the census
  // ordering deterministic regardless of archive order.
  struct Endpoint {
    std::string host;
    std::string iface;
    Ipv4Address address;
    TimePoint first_seen;
    TimePoint last_seen;
  };
  std::map<Ipv4Prefix, std::vector<Endpoint>> by_subnet;
  std::map<std::string, OsiSystemId> system_ids;  // hostname -> system id

  for (const ConfigFile& file : archive.files()) {
    Result<MinedConfig> mined = parse_config(file.text);
    if (!mined) {
      ++st.files_failed;
      continue;
    }
    ++st.files_parsed;
    if (mined->has_system_id) system_ids[mined->hostname] = mined->system_id;
    for (const auto& intf : mined->interfaces) {
      const Ipv4Prefix subnet = Ipv4Prefix::slash31_of(intf.address);
      std::vector<Endpoint>& eps = by_subnet[subnet];
      auto it = std::find_if(eps.begin(), eps.end(), [&](const Endpoint& e) {
        return e.host == mined->hostname && e.iface == intf.name;
      });
      if (it == eps.end()) {
        eps.push_back(Endpoint{mined->hostname, intf.name, intf.address,
                               file.captured_at, file.captured_at});
        ++st.endpoints;
      } else {
        it->first_seen = std::min(it->first_seen, file.captured_at);
        it->last_seen = std::max(it->last_seen, file.captured_at);
      }
    }
  }

  LinkCensus census;
  for (const auto& [subnet, eps] : by_subnet) {
    // A healthy /31 has exactly two endpoints on two different hosts.
    if (eps.size() != 2 || eps[0].host == eps[1].host) {
      ++st.unpaired_subnets;
      continue;
    }
    const TimePoint first =
        std::min(eps[0].first_seen, eps[1].first_seen) - params.lifetime_slack;
    const TimePoint last =
        std::max(eps[0].last_seen, eps[1].last_seen) + params.lifetime_slack;
    const TimeRange lifetime{std::max(first, period.begin),
                             std::min(last, period.end)};
    const bool cpe =
        eps[0].host.find(params.cpe_host_token) != std::string::npos ||
        eps[1].host.find(params.cpe_host_token) != std::string::npos;
    census.add_link(CensusEndpoint{eps[0].host, eps[0].iface, eps[0].address},
                    CensusEndpoint{eps[1].host, eps[1].iface, eps[1].address},
                    subnet, lifetime,
                    cpe ? RouterClass::kCpe : RouterClass::kCore);
  }
  for (const auto& [host, sysid] : system_ids) {
    census.set_hostname(sysid, host);
  }
  census.finalize();
  return census;
}

}  // namespace netfail
