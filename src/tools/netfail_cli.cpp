// netfail — command-line front end.
//
//   netfail simulate --out DIR [--small] [--seed N]
//       Run the (CENIC-scale or scaled-down) simulation and write a full
//       capture bundle: flat syslog file, NFC1 LSP capture, per-device
//       config archive, ticket TSV, listener-gap TSV and a META file.
//
//   netfail analyze --dir DIR [--policy drop|assume-down|assume-up|hold-state]
//       Run the paper's analysis over a capture bundle (yours or a
//       simulated one) and print the comparison tables.
//
//   netfail stream --dir DIR [--policy P] [--horizon SECS] [--max-links N]
//                  [--report-every N] [--json-metrics]
//       Tail a capture bundle through the online engine: interleave the
//       syslog and LSP streams in arrival order, maintain per-link failure
//       state incrementally in bounded memory, print rolling per-link
//       stats, and end with a metrics snapshot.
//
//   netfail serve --dir DIR --syslog-port N --lsp-port N [--policy P] ...
//       Run the live ingest gateway: a UDP syslog receiver and a TCP LSP
//       feed draining into the online engine. The bundle supplies the link
//       census and analysis period. Runs until SIGINT (drains, prints the
//       final reconstruction) or until a replay signals completion.
//       --shards N partitions ingest and analysis across N event loops and
//       N engines keyed by a stable link hash (DESIGN.md sect. 14).
//       --state-dir DIR persists a durable engine checkpoint (restored on
//       the next start); --snapshot-every DUR writes it periodically and
//       SIGINT always writes a final one. --http-port N serves the live
//       query API (/healthz /metrics /links /links/{name} /checkpoint).
//
//   netfail export --dir DIR [--out FILE] [--anonymize] [--seed N]
//       Render a bundle's per-link analysis (failures, flap episodes,
//       transitions) as a deterministic shareable text report;
//       --anonymize remaps every hostname/interface through seeded
//       pseudonyms and redacts free-text reasons.
//
//   netfail replay --dir DIR --target HOST --syslog-port N --lsp-port N
//                  [--rate MSGS_PER_SEC] [--loss P] [--duplicate P]
//                  [--reorder P] [--resets N] [--seed N]
//       Stream a bundle at a serve instance over real sockets, optionally
//       through the wire-level fault injector.
//
// The bundle format is exactly what a real deployment can produce: a
// syslog archive, a PyRT-style LSP capture, a RANCID-style config archive,
// and ticket/outage exports.
//
// Unrecognized flags are an error (usage + exit 2), not a silent no-op.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>
#include <unordered_map>

#include "src/analysis/ambiguous.hpp"
#include "src/analysis/availability.hpp"
#include "src/analysis/match.hpp"
#include "src/analysis/pipeline.hpp"
#include "src/analysis/tables.hpp"
#include "src/common/flags.hpp"
#include "src/common/metrics.hpp"
#include "src/common/strfmt.hpp"
#include "src/common/table.hpp"
#include "src/config/miner.hpp"
#include "src/io/config_dir.hpp"
#include "src/io/interval_file.hpp"
#include "src/io/lsp_capture.hpp"
#include "src/io/syslog_file.hpp"
#include "src/io/ticket_file.hpp"
#include "src/analysis/flaps.hpp"
#include "src/net/gateway.hpp"
#include "src/net/replay.hpp"
#include "src/stream/engine.hpp"
#include "src/stream/event_mux.hpp"
#include "src/svc/export.hpp"
#include "src/svc/http.hpp"
#include "src/svc/snapshot.hpp"

namespace {

using namespace netfail;
namespace fs = std::filesystem;

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  netfail simulate --out DIR [--small] [--seed N]\n"
      "  netfail analyze --dir DIR [--policy drop|assume-down|assume-up|"
      "hold-state]\n"
      "  netfail stream --dir DIR [--policy P] [--horizon SECS] "
      "[--max-links N]\n"
      "                 [--report-every N] [--json-metrics] [--detect]\n"
      "                 [--ewma-alpha A] [--cusum-threshold T] "
      "[--drift-window MIN]\n"
      "  netfail serve --dir DIR --syslog-port N --lsp-port N [--policy P]\n"
      "                [--horizon SECS] [--max-links N] [--host ADDR]\n"
      "                [--shards N] [--detect] [--ewma-alpha A]\n"
      "                [--cusum-threshold T] [--drift-window MIN]\n"
      "                [--state-dir DIR] [--snapshot-every DUR]\n"
      "                [--http-port N]\n"
      "  netfail export --dir DIR [--out FILE] [--anonymize] [--seed N]\n"
      "                 [--policy P]\n"
      "  netfail replay --dir DIR --target HOST --syslog-port N "
      "--lsp-port N\n"
      "                 [--rate MSGS_PER_SEC] [--loss P] [--duplicate P]\n"
      "                 [--reorder P] [--resets N] [--seed N]\n");
  return 2;
}

/// Parse the subcommand's flags; on any unknown flag / missing value /
/// stray positional argument, print the problem and the usage text and make
/// the caller exit 2.
bool parse_or_usage(int argc, char** argv,
                    const std::vector<flags::FlagSpec>& specs,
                    flags::Parsed& out) {
  out = flags::parse_flags(argc, argv, 2, specs);
  if (out.ok && !out.positional.empty()) {
    out.ok = false;
    out.error = "unexpected argument: " + out.positional.front();
  }
  if (!out.ok) {
    std::fprintf(stderr, "netfail: %s\n", out.error.c_str());
    return false;
  }
  return true;
}

/// Parse a numeric flag value strictly: the whole string must be a
/// non-negative decimal number, otherwise the caller exits 2.
bool parse_number(const char* flag, const std::string& value,
                  std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(value.c_str(), &end, 10);
  if (value.empty() || *end != '\0' || value.front() == '-') {
    std::fprintf(stderr, "netfail: flag %s expects a number, got '%s'\n", flag,
                 value.c_str());
    return false;
  }
  return true;
}

/// Parse the shared --detect knob flags (stream and serve) into the
/// detector options. Errors print the problem; the caller exits 2.
bool parse_detect_flags(const flags::Parsed& args,
                        detect::DetectorOptions& detect) {
  detect.enabled = args.has("--detect");
  if (const auto a = args.value("--ewma-alpha")) {
    const auto v = flags::parse_positive_real("--ewma-alpha", *a);
    if (!v) {
      std::fprintf(stderr, "netfail: %s\n", v.error().to_string().c_str());
      return false;
    }
    if (*v > 1.0) {
      std::fprintf(stderr,
                   "netfail: flag --ewma-alpha expects a weight in (0,1], "
                   "got '%s'\n",
                   a->c_str());
      return false;
    }
    detect.ewma_alpha = *v;
  }
  if (const auto t = args.value("--cusum-threshold")) {
    const auto v = flags::parse_positive_real("--cusum-threshold", *t);
    if (!v) {
      std::fprintf(stderr, "netfail: %s\n", v.error().to_string().c_str());
      return false;
    }
    detect.cusum_threshold = *v;
  }
  if (const auto w = args.value("--drift-window")) {
    const auto v = flags::parse_positive_real("--drift-window", *w);
    if (!v) {
      std::fprintf(stderr, "netfail: %s\n", v.error().to_string().c_str());
      return false;
    }
    detect.drift_window =
        Duration::millis(static_cast<std::int64_t>(*v * 60000.0 + 0.5));
  }
  return true;
}

/// Post-run alert summary for --detect. Capture bundles carry no ground
/// truth, so the CLI reports the alert stream itself; precision/recall
/// scoring against injected failures lives in bench_detect and the tests.
void print_alert_summary(const detect::LinkDetector& detector,
                         const LinkCensus& census) {
  const std::vector<detect::LinkAlert> alerts = detector.sink().snapshot();
  std::uint64_t by_kind[3] = {0, 0, 0};
  std::unordered_map<LinkId, std::size_t> per_link;
  for (const detect::LinkAlert& a : alerts) {
    ++by_kind[static_cast<int>(a.kind)];
    ++per_link[a.link];
  }
  std::printf(
      "\ndetection: %zu alerts (%llu hard-down, %llu flap-cusum, %llu "
      "template-drift) over %llu syslog + %llu IS-IS observations\n",
      alerts.size(),
      static_cast<unsigned long long>(
          by_kind[static_cast<int>(detect::AlertKind::kHardDown)]),
      static_cast<unsigned long long>(
          by_kind[static_cast<int>(detect::AlertKind::kFlapCusum)]),
      static_cast<unsigned long long>(
          by_kind[static_cast<int>(detect::AlertKind::kTemplateDrift)]),
      static_cast<unsigned long long>(detector.counters().syslog_observed),
      static_cast<unsigned long long>(detector.counters().isis_observed));

  std::vector<std::pair<LinkId, std::size_t>> worst(per_link.begin(),
                                                    per_link.end());
  std::sort(worst.begin(), worst.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  const std::size_t top = std::min<std::size_t>(5, worst.size());
  for (std::size_t i = 0; i < top; ++i) {
    std::printf("    %-44s %zu alerts\n",
                census.link(worst[i].first).name.c_str(), worst[i].second);
  }
}

bool parse_policy(const std::string& p, analysis::AmbiguityPolicy& policy) {
  if (p == "drop") {
    policy = analysis::AmbiguityPolicy::kDrop;
  } else if (p == "assume-down") {
    policy = analysis::AmbiguityPolicy::kAssumeDown;
  } else if (p == "assume-up") {
    policy = analysis::AmbiguityPolicy::kAssumeUp;
  } else if (p == "hold-state") {
    policy = analysis::AmbiguityPolicy::kHoldState;
  } else {
    std::fprintf(stderr, "netfail: unknown --policy %s\n", p.c_str());
    return false;
  }
  return true;
}

// ---- simulate ----------------------------------------------------------------

int cmd_simulate(int argc, char** argv) {
  flags::Parsed args;
  if (!parse_or_usage(argc, argv,
                      {{"--out", true}, {"--small", false}, {"--seed", true}},
                      args)) {
    return usage();
  }
  const auto out = args.value("--out");
  if (!out) return usage();
  sim::ScenarioParams scenario =
      args.has("--small") ? sim::test_scenario() : sim::cenic_scenario();
  if (const auto seed = args.value("--seed")) {
    if (!parse_number("--seed", *seed, scenario.seed)) return usage();
  }

  std::fprintf(stderr, "simulating %s scenario (seed %llu)...\n",
               args.has("--small") ? "small" : "CENIC-scale",
               static_cast<unsigned long long>(scenario.seed));
  const sim::SimulationResult sim = sim::run_simulation(scenario);

  fs::create_directories(*out);
  const fs::path dir(*out);

  auto check = [](Status s, const char* what) {
    if (!s) {
      std::fprintf(stderr, "error writing %s: %s\n", what,
                   s.error().to_string().c_str());
      std::exit(1);
    }
  };
  check(io::write_syslog_file(sim.collector, (dir / "messages.log").string()),
        "messages.log");
  check(io::write_lsp_capture(sim.listener.records(),
                              (dir / "listener.nfc").string()),
        "listener.nfc");
  const ConfigArchive archive =
      generate_archive(sim.topology, scenario.period);
  check(io::write_config_dir(archive, (dir / "configs").string()), "configs/");
  check(io::write_ticket_file(sim.tickets, (dir / "tickets.tsv").string()),
        "tickets.tsv");
  check(io::write_interval_file(sim.truth.listener_gaps(),
                                (dir / "listener_gaps.tsv").string()),
        "listener_gaps.tsv");
  {
    std::FILE* meta = std::fopen((dir / "META").string().c_str(), "w");
    if (meta == nullptr) {
      std::fprintf(stderr, "error writing META\n");
      return 1;
    }
    std::fprintf(meta, "period_begin_ms\t%lld\nperiod_end_ms\t%lld\n",
                 static_cast<long long>(scenario.period.begin.unix_millis()),
                 static_cast<long long>(scenario.period.end.unix_millis()));
    std::fclose(meta);
  }

  std::printf("wrote capture bundle to %s:\n", out->c_str());
  std::printf("  messages.log       %zu syslog lines\n", sim.collector.size());
  std::printf("  listener.nfc       %zu LSP frames\n",
              sim.listener.records().size());
  std::printf("  configs/           %zu files\n", archive.size());
  std::printf("  tickets.tsv        %zu tickets\n", sim.tickets.size());
  std::printf("  listener_gaps.tsv  %zu windows\n",
              sim.truth.listener_gaps().ranges().size());
  return 0;
}

// ---- bundle loading (shared by analyze and stream) ---------------------------

Result<TimeRange> read_meta(const fs::path& dir) {
  std::FILE* meta = std::fopen((dir / "META").string().c_str(), "r");
  if (meta == nullptr) {
    return make_error(ErrorCode::kNotFound, "no META file in bundle");
  }
  long long begin_ms = 0, end_ms = 0;
  char key[64];
  TimeRange period;
  while (std::fscanf(meta, "%63s %lld", key, &begin_ms) == 2) {
    if (std::strcmp(key, "period_begin_ms") == 0) {
      period.begin = TimePoint::from_unix_millis(begin_ms);
    } else if (std::strcmp(key, "period_end_ms") == 0) {
      end_ms = begin_ms;
      period.end = TimePoint::from_unix_millis(end_ms);
    }
  }
  std::fclose(meta);
  if (period.empty()) {
    return make_error(ErrorCode::kParseError, "META has no valid period");
  }
  return period;
}

struct Bundle {
  TimeRange period;
  LinkCensus census;
  syslog::Collector collector;
  std::vector<isis::LspRecord> records;
  TicketStore tickets;
  IntervalSet gaps;
};

/// Load META, configs, syslog and LSP capture; tickets/gaps are optional.
bool load_bundle(const fs::path& dir, Bundle& out) {
  const auto period = read_meta(dir);
  if (!period) {
    std::fprintf(stderr, "error: %s\n", period.error().to_string().c_str());
    return false;
  }
  out.period = *period;
  io::ConfigDirStats config_stats;
  const auto archive =
      io::read_config_dir((dir / "configs").string(), &config_stats);
  if (!archive) {
    std::fprintf(stderr, "error: %s\n", archive.error().to_string().c_str());
    return false;
  }
  const auto collector =
      io::read_syslog_file((dir / "messages.log").string(), period->begin);
  if (!collector) {
    std::fprintf(stderr, "error: %s\n", collector.error().to_string().c_str());
    return false;
  }
  out.collector = *collector;
  const auto records = io::read_lsp_capture((dir / "listener.nfc").string());
  if (!records) {
    std::fprintf(stderr, "error: %s\n", records.error().to_string().c_str());
    return false;
  }
  out.records = *records;
  if (const auto t = io::read_ticket_file((dir / "tickets.tsv").string())) {
    out.tickets = *t;
  }
  if (const auto g =
          io::read_interval_file((dir / "listener_gaps.tsv").string())) {
    out.gaps = *g;
  }

  MiningStats mining;
  out.census = mine_archive(*archive, *period, {}, &mining);
  std::fprintf(stderr,
               "bundle: %zu configs -> %zu links; %zu syslog lines; %zu "
               "LSPs; %zu tickets\n",
               config_stats.files, out.census.size(), out.collector.size(),
               out.records.size(), out.tickets.size());
  return true;
}

// ---- analyze -----------------------------------------------------------------

int cmd_analyze(int argc, char** argv) {
  flags::Parsed args;
  if (!parse_or_usage(argc, argv, {{"--dir", true}, {"--policy", true}},
                      args)) {
    return usage();
  }
  const auto dir_arg = args.value("--dir");
  if (!dir_arg) return usage();

  analysis::AmbiguityPolicy policy = analysis::AmbiguityPolicy::kAssumeUp;
  if (const auto p = args.value("--policy")) {
    if (!parse_policy(*p, policy)) return usage();
  }

  Bundle bundle;
  if (!load_bundle(fs::path(*dir_arg), bundle)) return 1;

  // ---- the paper's pipeline, from files --------------------------------------
  const isis::IsisExtraction isis_ex =
      isis::extract_transitions(bundle.records, bundle.census);
  const syslog::SyslogExtraction syslog_ex =
      syslog::extract_transitions(bundle.collector, bundle.census);

  analysis::ReconstructOptions recon;
  recon.period = bundle.period;
  recon.policy = policy;
  analysis::Reconstruction isis_recon =
      analysis::reconstruct_from_isis(isis_ex.is_reach, recon);
  analysis::Reconstruction syslog_recon =
      analysis::reconstruct_from_syslog(syslog_ex.transitions, recon);
  (void)analysis::remove_listener_gap_failures(isis_recon.failures,
                                               bundle.gaps);
  (void)analysis::remove_listener_gap_failures(syslog_recon.failures,
                                               bundle.gaps);
  const analysis::SanitizationReport long_report =
      analysis::verify_long_failures(syslog_recon.failures, bundle.census,
                                     bundle.tickets);
  analysis::FlapAnalysis isis_flaps =
      analysis::detect_flaps(isis_recon.failures);
  (void)analysis::detect_flaps(syslog_recon.failures);

  // ---- reports ----------------------------------------------------------------
  std::printf("%s\n", analysis::render_table2(analysis::match_reachability(
                          syslog_ex.transitions, isis_ex.is_reach,
                          isis_ex.ip_reach, {}))
                          .c_str());
  std::printf("%s\n", analysis::render_table3(analysis::match_transitions(
                          isis_ex.is_reach, syslog_ex.transitions,
                          isis_flaps.flap_ranges, {}))
                          .c_str());
  analysis::Table4Data t4;
  t4.match = analysis::match_failures(isis_recon.failures,
                                      syslog_recon.failures, {});
  std::printf("%s\n", analysis::render_table4(t4).c_str());
  std::printf(
      "Long-failure verification removed %zu failures (%.0f h spurious)\n\n",
      long_report.long_failures_removed,
      long_report.spurious_hours_removed.hours_f());

  analysis::Table5Data t5;
  t5.syslog = analysis::compute_link_statistics(syslog_recon.failures,
                                                bundle.census, bundle.period);
  t5.isis = analysis::compute_link_statistics(isis_recon.failures,
                                              bundle.census, bundle.period);
  std::printf("%s\n", analysis::render_table5(t5).c_str());
  std::printf("%s\n", analysis::render_ks(analysis::compute_ks(t5)).c_str());
  std::printf("%s\n", analysis::render_table6(analysis::classify_ambiguous(
                          syslog_recon.ambiguous, isis_recon.failures,
                          isis_ex.is_reach, {}))
                          .c_str());
  return 0;
}

// ---- stream ------------------------------------------------------------------

void print_rolling(const stream::StreamEngine& engine, const Bundle& bundle,
                   double events_per_sec) {
  const stream::LinkTracker& isis_t = engine.isis_tracker();
  const stream::LinkTracker& syslog_t = engine.syslog_tracker();
  std::printf(
      "[%s] %llu events (%.0f ev/s) | IS-IS: %llu failures %.1f h down, "
      "%zu links, %zu pending | syslog: %llu failures %.1f h down\n",
      engine.high_water().to_string().c_str(),
      static_cast<unsigned long long>(engine.events_ingested()),
      events_per_sec,
      static_cast<unsigned long long>(isis_t.counters().failures_released),
      isis_t.total_downtime().hours_f(), isis_t.tracked_links(),
      isis_t.pending_transitions(),
      static_cast<unsigned long long>(syslog_t.counters().failures_released),
      syslog_t.total_downtime().hours_f());

  // Worst links right now, by released downtime.
  std::vector<stream::LinkRunningStats> stats = isis_t.link_stats();
  std::sort(stats.begin(), stats.end(),
            [](const stream::LinkRunningStats& a,
               const stream::LinkRunningStats& b) {
              return a.downtime > b.downtime;
            });
  const std::size_t top = std::min<std::size_t>(3, stats.size());
  for (std::size_t i = 0; i < top; ++i) {
    const stream::LinkRunningStats& ls = stats[i];
    if (ls.failures == 0) break;
    std::printf("    %-44s %3zu failures  %8.2f h down  %zu flap episodes%s\n",
                bundle.census.link(ls.link).name.c_str(), ls.failures,
                ls.downtime.hours_f(), ls.flap_episodes,
                ls.state == LinkDirection::kDown ? "  [DOWN]" : "");
  }
}

int cmd_stream(int argc, char** argv) {
  flags::Parsed args;
  if (!parse_or_usage(argc, argv,
                      {{"--dir", true},
                       {"--policy", true},
                       {"--horizon", true},
                       {"--max-links", true},
                       {"--report-every", true},
                       {"--json-metrics", false},
                       {"--detect", false},
                       {"--ewma-alpha", true},
                       {"--cusum-threshold", true},
                       {"--drift-window", true}},
                      args)) {
    return usage();
  }
  const auto dir_arg = args.value("--dir");
  if (!dir_arg) return usage();

  stream::EngineOptions options;
  if (!parse_detect_flags(args, options.detect)) return usage();
  if (const auto p = args.value("--policy")) {
    if (!parse_policy(*p, options.tracker.reconstruct.policy)) return usage();
  }
  if (const auto h = args.value("--horizon")) {
    std::uint64_t secs = 0;
    if (!parse_number("--horizon", *h, secs)) return usage();
    options.tracker.reorder_horizon =
        Duration::seconds(static_cast<std::int64_t>(secs));
  }
  if (const auto m = args.value("--max-links")) {
    std::uint64_t cap = 0;
    if (!parse_number("--max-links", *m, cap)) return usage();
    options.tracker.max_tracked_links = static_cast<std::size_t>(cap);
  }
  std::uint64_t report_every = 200000;
  if (const auto r = args.value("--report-every")) {
    if (!parse_number("--report-every", *r, report_every)) return usage();
    if (report_every == 0) report_every = 200000;
  }

  Bundle bundle;
  if (!load_bundle(fs::path(*dir_arg), bundle)) return 1;
  options.tracker.reconstruct.period = bundle.period;

  stream::StreamEngine engine(bundle.census, options);
  stream::EventMux mux =
      stream::EventMux::over_vectors(bundle.collector.lines(), bundle.records);

  metrics::Histogram& latency = metrics::global().histogram(
      "stream.event_latency_us", metrics::exponential_bounds(1, 4, 10));

  using Clock = std::chrono::steady_clock;
  const Clock::time_point started = Clock::now();
  Clock::time_point window_start = started;
  std::uint64_t window_events = 0;

  while (std::optional<stream::StreamEvent> ev = mux.next()) {
    const Clock::time_point t0 = Clock::now();
    engine.feed(*ev);
    const Clock::time_point t1 = Clock::now();
    latency.observe(
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()) /
        1e3);
    ++window_events;
    if (engine.events_ingested() % report_every == 0) {
      const double secs =
          static_cast<double>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  t1 - window_start)
                  .count()) /
          1e6;
      print_rolling(engine, bundle,
                    secs > 0 ? static_cast<double>(window_events) / secs : 0);
      window_start = t1;
      window_events = 0;
    }
  }
  engine.finish();

  const double total_secs =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                started)
              .count()) /
      1e6;

  // ---- final per-link table ---------------------------------------------------
  std::printf("\nstreamed %llu events (%llu syslog, %llu LSP) in %.2f s "
              "(%.0f events/s); %llu out-of-order drops\n",
              static_cast<unsigned long long>(engine.events_ingested()),
              static_cast<unsigned long long>(engine.syslog_events()),
              static_cast<unsigned long long>(engine.lsp_events()), total_secs,
              total_secs > 0
                  ? static_cast<double>(engine.events_ingested()) / total_secs
                  : 0,
              static_cast<unsigned long long>(
                  mux.stats().out_of_order_dropped));

  for (const auto* tracker :
       {&engine.isis_tracker(), &engine.syslog_tracker()}) {
    const bool is_isis = tracker == &engine.isis_tracker();
    const stream::TrackerCounters& c = tracker->counters();
    std::printf(
        "\n%s reconstruction: %llu failures on %zu links, %.1f h downtime, "
        "%llu flap episodes, %llu double-down, %llu double-up, "
        "%llu merged, %llu unterminated\n",
        is_isis ? "IS-IS" : "syslog",
        static_cast<unsigned long long>(c.failures_released),
        tracker->tracked_links(), tracker->total_downtime().hours_f(),
        static_cast<unsigned long long>(c.flap_episodes),
        static_cast<unsigned long long>(c.double_downs),
        static_cast<unsigned long long>(c.double_ups),
        static_cast<unsigned long long>(c.merged_duplicates),
        static_cast<unsigned long long>(c.unterminated));

    std::vector<stream::LinkRunningStats> stats = tracker->link_stats();
    std::sort(stats.begin(), stats.end(),
              [](const stream::LinkRunningStats& a,
                 const stream::LinkRunningStats& b) {
                return a.downtime > b.downtime;
              });
    TextTable table;
    table.set_header({"link", "failures", "downtime (h)", "flap episodes",
                      "availability (%)"});
    const Duration period = bundle.period.duration();
    const std::size_t top = std::min<std::size_t>(10, stats.size());
    for (std::size_t i = 0; i < top; ++i) {
      const stream::LinkRunningStats& ls = stats[i];
      if (ls.failures == 0) break;
      table.add_row(
          {bundle.census.link(ls.link).name, std::to_string(ls.failures),
           strformat("%.2f", ls.downtime.hours_f()),
           std::to_string(ls.flap_episodes),
           strformat("%.4f", 100.0 * (1.0 - ls.downtime / period))});
    }
    std::printf("%s", table.render().c_str());
  }

  if (options.detect.enabled) {
    print_alert_summary(engine.detector(), bundle.census);
  }

  std::printf("\n==== metrics snapshot ====\n%s",
              args.has("--json-metrics")
                  ? (metrics::global().render_json() + "\n").c_str()
                  : metrics::global().render_text().c_str());
  return 0;
}

// ---- serve -------------------------------------------------------------------

net::IngestGateway* g_serve_gateway = nullptr;
std::atomic<bool> g_interrupted{false};

void handle_sigint(int) {
  g_interrupted.store(true, std::memory_order_release);
  if (g_serve_gateway != nullptr) g_serve_gateway->request_stop();
}

int cmd_serve(int argc, char** argv) {
  flags::Parsed args;
  if (!parse_or_usage(argc, argv,
                      {{"--dir", true},
                       {"--syslog-port", true},
                       {"--lsp-port", true},
                       {"--host", true},
                       {"--shards", true},
                       {"--policy", true},
                       {"--horizon", true},
                       {"--max-links", true},
                       {"--detect", false},
                       {"--ewma-alpha", true},
                       {"--cusum-threshold", true},
                       {"--drift-window", true},
                       {"--state-dir", true},
                       {"--snapshot-every", true},
                       {"--http-port", true}},
                      args)) {
    return usage();
  }
  const auto dir_arg = args.value("--dir");
  const auto sport_arg = args.value("--syslog-port");
  const auto lport_arg = args.value("--lsp-port");
  if (!dir_arg || !sport_arg || !lport_arg) {
    std::fprintf(stderr,
                 "netfail: serve requires --dir, --syslog-port, --lsp-port\n");
    return usage();
  }

  std::string state_dir;
  if (const auto sd = args.value("--state-dir")) {
    const auto v = flags::parse_path("--state-dir", *sd);
    if (!v) {
      std::fprintf(stderr, "netfail: %s\n", v.error().to_string().c_str());
      return usage();
    }
    state_dir = *v;
  }
  Duration snapshot_every;  // zero = no periodic snapshots
  if (const auto se = args.value("--snapshot-every")) {
    const auto v = flags::parse_duration("--snapshot-every", *se);
    if (!v) {
      std::fprintf(stderr, "netfail: %s\n", v.error().to_string().c_str());
      return usage();
    }
    if (state_dir.empty()) {
      std::fprintf(stderr, "netfail: --snapshot-every requires --state-dir\n");
      return usage();
    }
    snapshot_every = *v;
  }
  std::uint16_t http_port = 0;
  bool http_enabled = false;
  if (const auto hp = args.value("--http-port")) {
    const auto v = flags::parse_port("--http-port", *hp);
    if (!v) {
      std::fprintf(stderr, "netfail: %s\n", v.error().to_string().c_str());
      return usage();
    }
    http_port = *v;
    http_enabled = true;
  }

  net::GatewayOptions options;
  if (!parse_detect_flags(args, options.engine.detect)) return usage();
  const auto sport = flags::parse_port("--syslog-port", *sport_arg);
  const auto lport = flags::parse_port("--lsp-port", *lport_arg);
  if (!sport || !lport) {
    std::fprintf(stderr, "netfail: %s\n",
                 (sport ? lport.error() : sport.error()).to_string().c_str());
    return usage();
  }
  options.syslog_port = *sport;
  options.lsp_port = *lport;
  if (const auto host = args.value("--host")) options.bind_host = *host;
  if (const auto s = args.value("--shards")) {
    const auto n = flags::parse_shard_count("--shards", *s);
    if (!n) {
      std::fprintf(stderr, "netfail: %s\n", n.error().to_string().c_str());
      return usage();
    }
    options.shards = *n;
  }
  if (const auto p = args.value("--policy")) {
    if (!parse_policy(*p, options.engine.tracker.reconstruct.policy)) {
      return usage();
    }
  }
  if (const auto h = args.value("--horizon")) {
    std::uint64_t secs = 0;
    if (!parse_number("--horizon", *h, secs)) return usage();
    options.engine.tracker.reorder_horizon =
        Duration::seconds(static_cast<std::int64_t>(secs));
  }
  if (const auto m = args.value("--max-links")) {
    std::uint64_t cap = 0;
    if (!parse_number("--max-links", *m, cap)) return usage();
    options.engine.tracker.max_tracked_links = static_cast<std::size_t>(cap);
  }

  Bundle bundle;
  if (!load_bundle(fs::path(*dir_arg), bundle)) return 1;
  options.capture_start = bundle.period.begin;
  options.engine.tracker.reconstruct.period = bundle.period;

  // Durable state: restore an existing snapshot before the gateway spawns
  // any thread (engine_setup runs in the gateway constructor), so a
  // restarted serve resumes mid-replay instead of starting cold.
  std::string snap_path;
  std::optional<svc::LoadedSnapshot> restored;
  if (!state_dir.empty()) {
    std::error_code ec;
    fs::create_directories(state_dir, ec);
    if (ec) {
      std::fprintf(stderr, "netfail: cannot create --state-dir %s: %s\n",
                   state_dir.c_str(), ec.message().c_str());
      return 1;
    }
    snap_path = (fs::path(state_dir) / svc::kSnapshotFileName).string();
    if (fs::exists(snap_path)) {
      auto loaded = svc::LoadedSnapshot::load(snap_path, bundle.census);
      if (!loaded) {
        std::fprintf(stderr, "netfail: cannot restore %s: %s\n",
                     snap_path.c_str(), loaded.error().to_string().c_str());
        return 1;
      }
      if (loaded->shard_count() != options.shards) {
        std::fprintf(stderr,
                     "netfail: snapshot %s has %u shards but --shards is %u; "
                     "restart with --shards %u or remove the state dir\n",
                     snap_path.c_str(), loaded->shard_count(), options.shards,
                     loaded->shard_count());
        return 1;
      }
      restored.emplace(std::move(*loaded));
      std::fprintf(stderr, "restoring checkpoint from %s\n", snap_path.c_str());
    }
  }
  if (restored.has_value()) {
    options.engine_setup = [&restored](std::uint32_t shard,
                                       stream::StreamEngine& engine) {
      if (Status st = restored->restore_shard(shard, engine); !st.ok()) {
        std::fprintf(stderr, "netfail: restoring shard %u failed: %s\n", shard,
                     st.error().to_string().c_str());
        std::exit(1);
      }
    };
  }

  net::IngestGateway gateway(bundle.census, options);
  if (Status st = gateway.start(); !st.ok()) {
    std::fprintf(stderr, "netfail: cannot start gateway: %s\n",
                 st.error().to_string().c_str());
    return 1;
  }
  g_serve_gateway = &gateway;
  std::signal(SIGINT, handle_sigint);
  std::fprintf(stderr,
               "listening: syslog udp://%s:%u, lsp tcp://%s:%u, %u shard%s "
               "(SIGINT drains and prints the reconstruction)\n",
               options.bind_host.c_str(), gateway.syslog_port(),
               options.bind_host.c_str(), gateway.lsp_port(),
               gateway.shard_count(), gateway.shard_count() == 1 ? "" : "s");

  // Durable snapshot writer: read-consistent per-shard checkpoints from the
  // consumer threads, serialized and renamed into place atomically.
  const auto write_snapshot = [&gateway, &bundle, &snap_path]() -> Status {
    const std::vector<stream::Checkpoint> cps = gateway.snapshot_engines();
    std::vector<const stream::StreamEngine*> engines;
    engines.reserve(cps.size());
    for (const stream::Checkpoint& cp : cps) engines.push_back(&cp.state());
    return svc::save_snapshot(snap_path, engines, bundle.census);
  };

  std::optional<svc::HttpServer> http;
  if (http_enabled) {
    svc::HttpOptions hopts;
    hopts.host = options.bind_host;
    hopts.port = http_port;
    hopts.period_begin = bundle.period.begin;
    svc::HttpServer::CheckpointFn checkpoint_fn;
    if (!state_dir.empty()) checkpoint_fn = write_snapshot;
    http.emplace(
        bundle.census, [&gateway] { return gateway.snapshot_engines(); },
        std::move(checkpoint_fn), std::move(hopts));
    if (Status st = http->start(); !st.ok()) {
      std::fprintf(stderr, "netfail: cannot start http server: %s\n",
                   st.error().to_string().c_str());
      gateway.stop();
      g_serve_gateway = nullptr;
      return 1;
    }
    std::fprintf(stderr, "http: http://%s:%u (/healthz /metrics /links "
                         "/checkpoint)\n",
                 options.bind_host.c_str(), http->port());
  }

  // The wait loop doubles as the periodic-snapshot timer: each pass is one
  // ~250ms slice, so the period is honored without a second clock source.
  const std::int64_t snapshot_period_ms = snapshot_every.total_millis();
  std::int64_t since_snapshot_ms = 0;
  for (;;) {
    if (gateway.wait_replay_complete(std::chrono::milliseconds(250))) break;
    if (g_interrupted.load(std::memory_order_acquire)) break;
    if (snapshot_period_ms > 0) {
      since_snapshot_ms += 250;
      if (since_snapshot_ms >= snapshot_period_ms) {
        since_snapshot_ms = 0;
        if (Status st = write_snapshot(); !st.ok()) {
          std::fprintf(stderr, "netfail: snapshot failed: %s\n",
                       st.error().to_string().c_str());
        }
      }
    }
  }
  std::signal(SIGINT, SIG_DFL);
  // Stop order matters: the HTTP server queries the gateway, so it goes
  // down first; the gateway then drains and takes its final checkpoints,
  // which the shutdown snapshot below persists.
  if (http.has_value()) http->stop();
  gateway.stop();
  g_serve_gateway = nullptr;

  if (!state_dir.empty()) {
    if (Status st = write_snapshot(); !st.ok()) {
      std::fprintf(stderr, "netfail: final snapshot failed: %s\n",
                   st.error().to_string().c_str());
    } else {
      std::fprintf(stderr, "checkpoint written to %s\n", snap_path.c_str());
    }
  }

  const net::GatewayCounters c = gateway.counters();
  std::printf(
      "\ningested %llu syslog datagrams (%llu enqueued, %llu dropped at the "
      "queue) and %llu LSP frames across %llu udp socket%s\n"
      "connections: %llu accepted, %llu closed; backpressure pauses: %llu; "
      "torn frame tails: %llu\n",
      static_cast<unsigned long long>(c.syslog_datagrams),
      static_cast<unsigned long long>(c.syslog_enqueued),
      static_cast<unsigned long long>(c.syslog_queue_drops),
      static_cast<unsigned long long>(c.lsp_frames),
      static_cast<unsigned long long>(c.udp_sockets),
      c.udp_sockets == 1 ? "" : "s",
      static_cast<unsigned long long>(c.connections_accepted),
      static_cast<unsigned long long>(c.connections_closed),
      static_cast<unsigned long long>(c.backpressure_pauses),
      static_cast<unsigned long long>(c.lsp_torn_tails));
  // Aggregate the per-shard partitions the way merge_shard_runs does:
  // failures and downtime sum (each link's state lives on exactly one
  // shard), syslog events sum (routed), LSP events come from shard 0 (the
  // stream is broadcast, every shard saw all of it), high-water is the max.
  // With --shards 1 this is just shard 0.
  std::uint64_t events = gateway.engine(0).lsp_events();
  std::uint64_t isis_failures = 0, syslog_failures = 0;
  Duration isis_downtime, syslog_downtime;
  TimePoint high_water;
  for (std::uint32_t s = 0; s < gateway.shard_count(); ++s) {
    const stream::Checkpoint& cp = gateway.final_checkpoint(s);
    high_water = std::max(high_water, cp.high_water());
    const stream::StreamEngine& e = gateway.engine(s);
    events += e.syslog_events();
    isis_failures += e.isis_tracker().counters().failures_released;
    syslog_failures += e.syslog_tracker().counters().failures_released;
    isis_downtime = isis_downtime + e.isis_tracker().total_downtime();
    syslog_downtime = syslog_downtime + e.syslog_tracker().total_downtime();
  }
  std::printf(
      "final checkpoint at %s after %llu events\n"
      "IS-IS reconstruction: %llu failures, %.1f h downtime | syslog "
      "reconstruction: %llu failures, %.1f h downtime\n",
      high_water.to_string().c_str(), static_cast<unsigned long long>(events),
      static_cast<unsigned long long>(isis_failures), isis_downtime.hours_f(),
      static_cast<unsigned long long>(syslog_failures),
      syslog_downtime.hours_f());
  if (options.engine.detect.enabled) {
    std::printf("alerts at final checkpoint: %llu\n",
                static_cast<unsigned long long>(gateway.final_alerts()));
    for (std::uint32_t s = 0; s < gateway.shard_count(); ++s) {
      print_alert_summary(gateway.engine(s).detector(), bundle.census);
    }
  }
  return 0;
}

// ---- export ------------------------------------------------------------------

int cmd_export(int argc, char** argv) {
  flags::Parsed args;
  if (!parse_or_usage(argc, argv,
                      {{"--dir", true},
                       {"--out", true},
                       {"--anonymize", false},
                       {"--seed", true},
                       {"--policy", true}},
                      args)) {
    return usage();
  }
  const auto dir_arg = args.value("--dir");
  if (!dir_arg) return usage();

  svc::ExportOptions options;
  options.anonymize = args.has("--anonymize");
  if (const auto seed = args.value("--seed")) {
    if (!parse_number("--seed", *seed, options.seed)) return usage();
  }
  analysis::AmbiguityPolicy policy = analysis::AmbiguityPolicy::kAssumeUp;
  if (const auto p = args.value("--policy")) {
    if (!parse_policy(*p, policy)) return usage();
  }
  std::string out_path;
  if (const auto out = args.value("--out")) {
    const auto v = flags::parse_path("--out", *out);
    if (!v) {
      std::fprintf(stderr, "netfail: %s\n", v.error().to_string().c_str());
      return usage();
    }
    out_path = *v;
  }

  Bundle bundle;
  if (!load_bundle(fs::path(*dir_arg), bundle)) return 1;

  // The batch pipeline's extract + reconstruct + flap stages feed the
  // renderer; both sources' failures ride in one list (the renderer splits
  // per link and per source).
  const isis::IsisExtraction isis_ex =
      isis::extract_transitions(bundle.records, bundle.census);
  const syslog::SyslogExtraction syslog_ex =
      syslog::extract_transitions(bundle.collector, bundle.census);
  analysis::ReconstructOptions recon;
  recon.period = bundle.period;
  recon.policy = policy;
  analysis::Reconstruction isis_recon =
      analysis::reconstruct_from_isis(isis_ex.is_reach, recon);
  analysis::Reconstruction syslog_recon =
      analysis::reconstruct_from_syslog(syslog_ex.transitions, recon);
  const analysis::FlapAnalysis isis_flaps =
      analysis::detect_flaps(isis_recon.failures);
  const analysis::FlapAnalysis syslog_flaps =
      analysis::detect_flaps(syslog_recon.failures);

  svc::ExportInputs inputs;
  inputs.census = &bundle.census;
  inputs.failures = std::move(syslog_recon.failures);
  inputs.failures.insert(inputs.failures.end(), isis_recon.failures.begin(),
                         isis_recon.failures.end());
  inputs.syslog_episodes = syslog_flaps.episodes;
  inputs.isis_episodes = isis_flaps.episodes;
  inputs.transitions = syslog_ex.transitions;

  const std::string report = svc::render_export(inputs, options);
  if (out_path.empty()) {
    std::fwrite(report.data(), 1, report.size(), stdout);
  } else {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "netfail: cannot open %s\n", out_path.c_str());
      return 1;
    }
    const std::size_t written = std::fwrite(report.data(), 1, report.size(), f);
    if (std::fclose(f) != 0 || written != report.size()) {
      std::fprintf(stderr, "netfail: short write to %s\n", out_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s export (%zu links, %zu bytes) to %s\n",
                 options.anonymize ? "anonymized" : "plain",
                 bundle.census.size(), report.size(), out_path.c_str());
  }
  return 0;
}

// ---- replay ------------------------------------------------------------------

int cmd_replay(int argc, char** argv) {
  flags::Parsed args;
  if (!parse_or_usage(argc, argv,
                      {{"--dir", true},
                       {"--target", true},
                       {"--syslog-port", true},
                       {"--lsp-port", true},
                       {"--rate", true},
                       {"--loss", true},
                       {"--duplicate", true},
                       {"--reorder", true},
                       {"--resets", true},
                       {"--seed", true}},
                      args)) {
    return usage();
  }
  const auto dir_arg = args.value("--dir");
  const auto target = args.value("--target");
  const auto sport_arg = args.value("--syslog-port");
  const auto lport_arg = args.value("--lsp-port");
  if (!dir_arg || !target || !sport_arg || !lport_arg) {
    std::fprintf(
        stderr,
        "netfail: replay requires --dir, --target, --syslog-port, "
        "--lsp-port\n");
    return usage();
  }

  net::ReplayOptions options;
  options.target_host = *target;
  const auto sport = flags::parse_port("--syslog-port", *sport_arg);
  const auto lport = flags::parse_port("--lsp-port", *lport_arg);
  if (!sport || !lport) {
    std::fprintf(stderr, "netfail: %s\n",
                 (sport ? lport.error() : sport.error()).to_string().c_str());
    return usage();
  }
  options.syslog_port = *sport;
  options.lsp_port = *lport;
  if (const auto r = args.value("--rate")) {
    const auto rate = flags::parse_nonneg_real("--rate", *r);
    if (!rate) {
      std::fprintf(stderr, "netfail: %s\n", rate.error().to_string().c_str());
      return usage();
    }
    options.rate = *rate;
  }
  const struct {
    const char* flag;
    double* out;
  } probs[] = {{"--loss", &options.faults.udp_loss},
               {"--duplicate", &options.faults.udp_duplicate},
               {"--reorder", &options.faults.udp_reorder}};
  for (const auto& pf : probs) {
    if (const auto v = args.value(pf.flag)) {
      const auto p = flags::parse_probability(pf.flag, *v);
      if (!p) {
        std::fprintf(stderr, "netfail: %s\n", p.error().to_string().c_str());
        return usage();
      }
      *pf.out = *p;
    }
  }
  if (const auto v = args.value("--resets")) {
    std::uint64_t n = 0;
    if (!parse_number("--resets", *v, n)) return usage();
    options.faults.tcp_resets = static_cast<std::uint32_t>(n);
  }
  if (const auto v = args.value("--seed")) {
    if (!parse_number("--seed", *v, options.faults.seed)) return usage();
  }

  Bundle bundle;
  if (!load_bundle(fs::path(*dir_arg), bundle)) return 1;

  using Clock = std::chrono::steady_clock;
  const Clock::time_point started = Clock::now();
  const auto stats = net::replay_capture(bundle.collector.lines(),
                                         bundle.records, options);
  if (!stats) {
    std::fprintf(stderr, "netfail: replay failed: %s\n",
                 stats.error().to_string().c_str());
    return 1;
  }
  const double secs =
      static_cast<double>(std::chrono::duration_cast<std::chrono::microseconds>(
                              Clock::now() - started)
                              .count()) /
      1e6;
  const std::uint64_t total = stats->syslog_sent + stats->lsp_frames_sent;
  std::printf(
      "replayed %llu datagrams + %llu LSP frames in %.2f s (%.0f msgs/s)\n"
      "injected: %llu lost, %llu duplicated, %llu reordered, %llu TCP "
      "resets (%llu reconnects)\n",
      static_cast<unsigned long long>(stats->syslog_sent),
      static_cast<unsigned long long>(stats->lsp_frames_sent), secs,
      secs > 0 ? static_cast<double>(total) / secs : 0.0,
      static_cast<unsigned long long>(stats->syslog_lost),
      static_cast<unsigned long long>(stats->syslog_duplicated),
      static_cast<unsigned long long>(stats->syslog_reordered),
      static_cast<unsigned long long>(stats->tcp_resets),
      static_cast<unsigned long long>(stats->reconnects));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  if (std::strcmp(argv[1], "simulate") == 0) return cmd_simulate(argc, argv);
  if (std::strcmp(argv[1], "analyze") == 0) return cmd_analyze(argc, argv);
  if (std::strcmp(argv[1], "stream") == 0) return cmd_stream(argc, argv);
  if (std::strcmp(argv[1], "serve") == 0) return cmd_serve(argc, argv);
  if (std::strcmp(argv[1], "export") == 0) return cmd_export(argc, argv);
  if (std::strcmp(argv[1], "replay") == 0) return cmd_replay(argc, argv);
  return usage();
}
