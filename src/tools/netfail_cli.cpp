// netfail — command-line front end.
//
//   netfail simulate --out DIR [--small] [--seed N]
//       Run the (CENIC-scale or scaled-down) simulation and write a full
//       capture bundle: flat syslog file, NFC1 LSP capture, per-device
//       config archive, ticket TSV, listener-gap TSV and a META file.
//
//   netfail analyze --dir DIR [--policy drop|assume-down|assume-up|hold-state]
//       Run the paper's analysis over a capture bundle (yours or a
//       simulated one) and print the comparison tables.
//
// The bundle format is exactly what a real deployment can produce: a
// syslog archive, a PyRT-style LSP capture, a RANCID-style config archive,
// and ticket/outage exports.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "src/analysis/ambiguous.hpp"
#include "src/analysis/availability.hpp"
#include "src/analysis/match.hpp"
#include "src/analysis/pipeline.hpp"
#include "src/analysis/tables.hpp"
#include "src/common/strfmt.hpp"
#include "src/config/miner.hpp"
#include "src/io/config_dir.hpp"
#include "src/io/interval_file.hpp"
#include "src/io/lsp_capture.hpp"
#include "src/io/syslog_file.hpp"
#include "src/io/ticket_file.hpp"

namespace {

using namespace netfail;
namespace fs = std::filesystem;

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  netfail simulate --out DIR [--small] [--seed N]\n"
      "  netfail analyze --dir DIR [--policy drop|assume-down|assume-up|"
      "hold-state]\n");
  return 2;
}

const char* flag_value(int argc, char** argv, const char* name) {
  for (int i = 2; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return nullptr;
}

bool has_flag(int argc, char** argv, const char* name) {
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

// ---- simulate ----------------------------------------------------------------

int cmd_simulate(int argc, char** argv) {
  const char* out = flag_value(argc, argv, "--out");
  if (out == nullptr) return usage();
  sim::ScenarioParams scenario = has_flag(argc, argv, "--small")
                                     ? sim::test_scenario()
                                     : sim::cenic_scenario();
  if (const char* seed = flag_value(argc, argv, "--seed")) {
    scenario.seed = std::strtoull(seed, nullptr, 10);
  }

  std::fprintf(stderr, "simulating %s scenario (seed %llu)...\n",
               has_flag(argc, argv, "--small") ? "small" : "CENIC-scale",
               static_cast<unsigned long long>(scenario.seed));
  const sim::SimulationResult sim = sim::run_simulation(scenario);

  fs::create_directories(out);
  const fs::path dir(out);

  auto check = [](Status s, const char* what) {
    if (!s) {
      std::fprintf(stderr, "error writing %s: %s\n", what,
                   s.error().to_string().c_str());
      std::exit(1);
    }
  };
  check(io::write_syslog_file(sim.collector, (dir / "messages.log").string()),
        "messages.log");
  check(io::write_lsp_capture(sim.listener.records(),
                              (dir / "listener.nfc").string()),
        "listener.nfc");
  const ConfigArchive archive =
      generate_archive(sim.topology, scenario.period);
  check(io::write_config_dir(archive, (dir / "configs").string()), "configs/");
  check(io::write_ticket_file(sim.tickets, (dir / "tickets.tsv").string()),
        "tickets.tsv");
  check(io::write_interval_file(sim.truth.listener_gaps(),
                                (dir / "listener_gaps.tsv").string()),
        "listener_gaps.tsv");
  {
    std::FILE* meta = std::fopen((dir / "META").string().c_str(), "w");
    if (meta == nullptr) {
      std::fprintf(stderr, "error writing META\n");
      return 1;
    }
    std::fprintf(meta, "period_begin_ms\t%lld\nperiod_end_ms\t%lld\n",
                 static_cast<long long>(scenario.period.begin.unix_millis()),
                 static_cast<long long>(scenario.period.end.unix_millis()));
    std::fclose(meta);
  }

  std::printf("wrote capture bundle to %s:\n", out);
  std::printf("  messages.log       %zu syslog lines\n", sim.collector.size());
  std::printf("  listener.nfc       %zu LSP frames\n",
              sim.listener.records().size());
  std::printf("  configs/           %zu files\n", archive.size());
  std::printf("  tickets.tsv        %zu tickets\n", sim.tickets.size());
  std::printf("  listener_gaps.tsv  %zu windows\n",
              sim.truth.listener_gaps().ranges().size());
  return 0;
}

// ---- analyze -----------------------------------------------------------------

Result<TimeRange> read_meta(const fs::path& dir) {
  std::FILE* meta = std::fopen((dir / "META").string().c_str(), "r");
  if (meta == nullptr) {
    return make_error(ErrorCode::kNotFound, "no META file in bundle");
  }
  long long begin_ms = 0, end_ms = 0;
  char key[64];
  TimeRange period;
  while (std::fscanf(meta, "%63s %lld", key, &begin_ms) == 2) {
    if (std::strcmp(key, "period_begin_ms") == 0) {
      period.begin = TimePoint::from_unix_millis(begin_ms);
    } else if (std::strcmp(key, "period_end_ms") == 0) {
      end_ms = begin_ms;
      period.end = TimePoint::from_unix_millis(end_ms);
    }
  }
  std::fclose(meta);
  if (period.empty()) {
    return make_error(ErrorCode::kParseError, "META has no valid period");
  }
  return period;
}

int cmd_analyze(int argc, char** argv) {
  const char* dir_arg = flag_value(argc, argv, "--dir");
  if (dir_arg == nullptr) return usage();
  const fs::path dir(dir_arg);

  analysis::AmbiguityPolicy policy = analysis::AmbiguityPolicy::kAssumeUp;
  if (const char* p = flag_value(argc, argv, "--policy")) {
    if (std::strcmp(p, "drop") == 0) {
      policy = analysis::AmbiguityPolicy::kDrop;
    } else if (std::strcmp(p, "assume-down") == 0) {
      policy = analysis::AmbiguityPolicy::kAssumeDown;
    } else if (std::strcmp(p, "assume-up") == 0) {
      policy = analysis::AmbiguityPolicy::kAssumeUp;
    } else if (std::strcmp(p, "hold-state") == 0) {
      policy = analysis::AmbiguityPolicy::kHoldState;
    } else {
      return usage();
    }
  }

  // ---- load the bundle -------------------------------------------------------
  const auto period = read_meta(dir);
  if (!period) {
    std::fprintf(stderr, "error: %s\n", period.error().to_string().c_str());
    return 1;
  }
  io::ConfigDirStats config_stats;
  const auto archive =
      io::read_config_dir((dir / "configs").string(), &config_stats);
  if (!archive) {
    std::fprintf(stderr, "error: %s\n", archive.error().to_string().c_str());
    return 1;
  }
  const auto collector =
      io::read_syslog_file((dir / "messages.log").string(), period->begin);
  if (!collector) {
    std::fprintf(stderr, "error: %s\n", collector.error().to_string().c_str());
    return 1;
  }
  const auto records = io::read_lsp_capture((dir / "listener.nfc").string());
  if (!records) {
    std::fprintf(stderr, "error: %s\n", records.error().to_string().c_str());
    return 1;
  }
  TicketStore tickets;
  if (const auto t = io::read_ticket_file((dir / "tickets.tsv").string())) {
    tickets = *t;
  }
  IntervalSet gaps;
  if (const auto g =
          io::read_interval_file((dir / "listener_gaps.tsv").string())) {
    gaps = *g;
  }

  // ---- the paper's pipeline, from files --------------------------------------
  MiningStats mining;
  const LinkCensus census = mine_archive(*archive, *period, {}, &mining);
  std::fprintf(stderr,
               "bundle: %zu configs -> %zu links; %zu syslog lines; %zu "
               "LSPs; %zu tickets\n",
               config_stats.files, census.size(), collector->size(),
               records->size(), tickets.size());

  const isis::IsisExtraction isis_ex =
      isis::extract_transitions(*records, census);
  const syslog::SyslogExtraction syslog_ex =
      syslog::extract_transitions(*collector, census);

  analysis::ReconstructOptions recon;
  recon.period = *period;
  recon.policy = policy;
  analysis::Reconstruction isis_recon =
      analysis::reconstruct_from_isis(isis_ex.is_reach, recon);
  analysis::Reconstruction syslog_recon =
      analysis::reconstruct_from_syslog(syslog_ex.transitions, recon);
  (void)analysis::remove_listener_gap_failures(isis_recon.failures, gaps);
  (void)analysis::remove_listener_gap_failures(syslog_recon.failures, gaps);
  const analysis::SanitizationReport long_report =
      analysis::verify_long_failures(syslog_recon.failures, census, tickets);
  analysis::FlapAnalysis isis_flaps =
      analysis::detect_flaps(isis_recon.failures);
  (void)analysis::detect_flaps(syslog_recon.failures);

  // ---- reports ----------------------------------------------------------------
  std::printf("%s\n", analysis::render_table2(analysis::match_reachability(
                          syslog_ex.transitions, isis_ex.is_reach,
                          isis_ex.ip_reach, {}))
                          .c_str());
  std::printf("%s\n", analysis::render_table3(analysis::match_transitions(
                          isis_ex.is_reach, syslog_ex.transitions,
                          isis_flaps.flap_ranges, {}))
                          .c_str());
  analysis::Table4Data t4;
  t4.match = analysis::match_failures(isis_recon.failures,
                                      syslog_recon.failures, {});
  std::printf("%s\n", analysis::render_table4(t4).c_str());
  std::printf(
      "Long-failure verification removed %zu failures (%.0f h spurious)\n\n",
      long_report.long_failures_removed,
      long_report.spurious_hours_removed.hours_f());

  analysis::Table5Data t5;
  t5.syslog =
      analysis::compute_link_statistics(syslog_recon.failures, census, *period);
  t5.isis =
      analysis::compute_link_statistics(isis_recon.failures, census, *period);
  std::printf("%s\n", analysis::render_table5(t5).c_str());
  std::printf("%s\n", analysis::render_ks(analysis::compute_ks(t5)).c_str());
  std::printf("%s\n", analysis::render_table6(analysis::classify_ambiguous(
                          syslog_recon.ambiguous, isis_recon.failures,
                          isis_ex.is_reach, {}))
                          .c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  if (std::strcmp(argv[1], "simulate") == 0) return cmd_simulate(argc, argv);
  if (std::strcmp(argv[1], "analyze") == 0) return cmd_analyze(argc, argv);
  return usage();
}
