// svc::HttpServer — a minimal HTTP/1.1 query endpoint over net::EventLoop.
//
// `netfail serve` answers live queries while ingest runs:
//
//   GET /healthz            liveness + event counters
//   GET /metrics            the process metrics registry, text format
//   GET /links              per-link downtime/availability/flap/alert rows
//   GET /links/{name}       one link (percent-encoded canonical name)
//   GET /checkpoint         trigger an on-demand durable snapshot
//
// `?anonymize=1` on /links and /links/{name} remaps every name through the
// seeded Anonymizer before rendering.
//
// No new dependencies: requests are reassembled from partial reads with
// the same buffer-and-scan discipline as net::FrameDecoder (bytes
// accumulate per connection until the blank line; oversized heads are
// rejected), and responses queue through EventLoop::set_want_write when a
// socket write would block.
//
// Locking discipline (the read-consistency contract, tested under TSan):
// the server owns no engine state. Every data request calls `snapshot_fn`,
// which returns one deep-copy Checkpoint per shard, each taken under that
// shard's consumer lock at a batch boundary (IngestGateway::
// snapshot_engines). A link's whole state lives on exactly one shard, so
// every per-link row is internally consistent — exactly the value an
// uninterrupted engine would report at that shard's high-water mark; the
// HTTP thread then renders from the immutable copies without further
// locking. Cross-shard skew is bounded by one drain batch and never mixes
// state *within* a link.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/common/result.hpp"
#include "src/common/time.hpp"
#include "src/config/census.hpp"
#include "src/net/event_loop.hpp"
#include "src/net/socket.hpp"
#include "src/stream/engine.hpp"
#include "src/svc/anonymize.hpp"

namespace netfail::svc {

struct HttpOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = kernel-assigned; read back with port()
  /// Origin of the availability denominator: availability is
  /// 1 - downtime / (high_water - period_begin). With the default (epoch),
  /// availability degenerates to ~1 and downtime_ms is the useful figure.
  TimePoint period_begin;
  std::uint64_t anonymize_seed = kDefaultAnonymizeSeed;
};

class HttpServer {
 public:
  /// One read-consistent deep copy per shard (see file comment).
  using SnapshotFn = std::function<std::vector<stream::Checkpoint>()>;
  /// On-demand durable snapshot (GET /checkpoint).
  using CheckpointFn = std::function<Status()>;

  HttpServer(const LinkCensus& census, SnapshotFn snapshot_fn,
             CheckpointFn checkpoint_fn, HttpOptions options = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Bind and start serving on a dedicated loop thread.
  Status start();
  /// Bound port (valid after start(); the useful form with port 0).
  std::uint16_t port() const { return port_; }
  /// Stop the loop, join the thread, close every connection. Idempotent.
  void stop();

  struct Response {
    int status = 200;
    std::string content_type = "application/json";
    std::string body;
  };

  /// Pure request dispatch — everything after parsing, before
  /// serialization. Public so unit tests can drive routes without sockets.
  Response handle(std::string_view method, std::string_view target);

 private:
  struct Conn {
    net::Fd fd;
    std::string in;        // unparsed request bytes
    std::string out;       // unsent response bytes
    std::size_t out_pos = 0;
    bool close_after = false;
  };

  void on_listen_ready(short revents);
  void on_conn_ready(int fd, short revents);
  /// Parse any complete request head in `c.in`; returns false when the
  /// connection must be dropped.
  bool process_input(Conn& c);
  void queue_response(Conn& c, const Response& r, bool keep_alive);
  /// Flush `c.out`; arms/disarms POLLOUT. Returns false on a dead socket.
  bool flush_output(Conn& c);
  void close_conn(int fd);

  Response handle_links(std::string_view path, bool anonymize);
  Response handle_checkpoint();
  const Anonymizer& anonymizer();

  const LinkCensus* census_;
  SnapshotFn snapshot_fn_;
  CheckpointFn checkpoint_fn_;
  HttpOptions options_;

  net::EventLoop loop_;
  net::Fd listen_fd_;
  std::uint16_t port_ = 0;
  std::thread thread_;
  bool running_ = false;
  std::map<int, Conn> conns_;  // loop-thread only
  std::optional<Anonymizer> anonymizer_;  // built lazily, loop-thread only
};

}  // namespace netfail::svc
