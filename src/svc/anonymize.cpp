#include "src/svc/anonymize.hpp"

#include <set>

#include "src/stream/sharded.hpp"

namespace netfail::svc {
namespace {

/// Keyed FNV-1a over the original bytes, rendered as prefix + 12 hex
/// digits. `bump` drives deterministic re-hashing on collision.
std::string pseudonym(char prefix, std::string_view original,
                      std::uint64_t seed, std::uint64_t bump) {
  std::uint64_t h = stream::kFnv64OffsetBasis ^ seed;
  for (const char c : original) {
    h ^= static_cast<std::uint8_t>(c);
    h *= stream::kFnv64Prime;
  }
  h ^= bump;
  h *= stream::kFnv64Prime;
  std::string out;
  out.push_back(prefix);
  for (int i = 11; i >= 0; --i) {
    out.push_back("0123456789abcdef"[(h >> (4 * i)) & 0xf]);
  }
  return out;
}

}  // namespace

Anonymizer::Anonymizer(const LinkCensus& census, std::uint64_t seed)
    : seed_(seed) {
  // Names already assigned (collision avoidance) and names that must never
  // be emitted (the originals — a pseudonym that happened to equal some
  // other router's real name would count as a leak).
  std::set<std::string, std::less<>> taken;
  std::set<std::string, std::less<>> originals;
  for (const CensusLink& link : census.links()) {
    for (const CensusEndpoint* ep : {&link.a, &link.b}) {
      originals.insert(ep->host.str());
      originals.insert(ep->iface.str());
    }
  }
  const auto assign = [&](char prefix, Symbol original) {
    if (!original.valid() || table_.has(original)) return;
    for (std::uint64_t bump = 0;; ++bump) {
      std::string candidate = pseudonym(prefix, original.view(), seed_, bump);
      if (taken.contains(candidate) || originals.contains(candidate)) continue;
      taken.insert(candidate);
      table_.set(original, Symbol(candidate));
      return;
    }
  };
  for (const CensusLink& link : census.links()) {
    for (const CensusEndpoint* ep : {&link.a, &link.b}) {
      assign('h', ep->host);
      assign('i', ep->iface);
    }
  }
  link_names_.reserve(census.size());
  for (const CensusLink& link : census.links()) {
    std::string name;
    name.append(map_view(link.a.host));
    name.push_back(':');
    name.append(map_view(link.a.iface));
    name.push_back('|');
    name.append(map_view(link.b.host));
    name.push_back(':');
    name.append(map_view(link.b.iface));
    link_names_.push_back(std::move(name));
  }
}

}  // namespace netfail::svc
