#include "src/svc/export.hpp"

#include <algorithm>
#include <charconv>
#include <optional>

namespace netfail::svc {
namespace {

void put_i64(std::string& out, std::int64_t v) {
  char buf[24];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, p);
}

void put_f64(std::string& out, double v) {
  char buf[40];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, p);
}

const char* source_tag(analysis::Source s) {
  return s == analysis::Source::kSyslog ? "syslog" : "isis";
}

struct PerLink {
  std::vector<const analysis::Failure*> failures;
  std::vector<std::pair<const analysis::FlapEpisode*, analysis::Source>>
      episodes;
  std::vector<const syslog::SyslogTransition*> transitions;
  std::vector<const detect::LinkAlert*> alerts;
  std::int64_t downtime_ms[2] = {0, 0};  // indexed by Source
  std::int64_t failure_count[2] = {0, 0};
};

}  // namespace

std::string render_export(const ExportInputs& in, const ExportOptions& opts) {
  const LinkCensus& census = *in.census;
  std::vector<PerLink> rows(census.size());
  const auto row_of = [&rows](LinkId link) -> PerLink* {
    if (!link.valid() || link.index() >= rows.size()) return nullptr;
    return &rows[link.index()];
  };

  for (const auto& f : in.failures) {
    if (PerLink* row = row_of(f.link); row != nullptr) {
      row->failures.push_back(&f);
      const int s = f.source == analysis::Source::kSyslog ? 0 : 1;
      row->downtime_ms[s] += f.duration().total_millis();
      ++row->failure_count[s];
    }
  }
  for (const auto& e : in.syslog_episodes) {
    if (PerLink* row = row_of(e.link); row != nullptr) {
      row->episodes.emplace_back(&e, analysis::Source::kSyslog);
    }
  }
  for (const auto& e : in.isis_episodes) {
    if (PerLink* row = row_of(e.link); row != nullptr) {
      row->episodes.emplace_back(&e, analysis::Source::kIsis);
    }
  }
  for (const auto& t : in.transitions) {
    if (PerLink* row = row_of(t.link); row != nullptr) {
      row->transitions.push_back(&t);
    }
  }
  for (const auto& a : in.alerts) {
    if (PerLink* row = row_of(a.link); row != nullptr) {
      row->alerts.push_back(&a);
    }
  }

  // Deterministic order within each link: failures/episodes by span then
  // source; transitions and alerts keep their (already time-ordered)
  // emission order.
  for (PerLink& row : rows) {
    std::stable_sort(row.failures.begin(), row.failures.end(),
                     [](const auto* a, const auto* b) {
                       if (a->span != b->span) return a->span < b->span;
                       return static_cast<int>(a->source) <
                              static_cast<int>(b->source);
                     });
    std::stable_sort(row.episodes.begin(), row.episodes.end(),
                     [](const auto& a, const auto& b) {
                       if (a.first->span != b.first->span) {
                         return a.first->span < b.first->span;
                       }
                       return static_cast<int>(a.second) <
                              static_cast<int>(b.second);
                     });
  }

  std::optional<Anonymizer> anon;
  if (opts.anonymize) anon.emplace(census, opts.seed);

  std::string out;
  out.append("netfail-export v1\n");
  out.append("links ");
  put_i64(out, static_cast<std::int64_t>(census.size()));
  out.push_back('\n');

  for (const CensusLink& link : census.links()) {
    const PerLink& row = rows[link.id.index()];
    out.append("link ");
    out.append(anon ? anon->link_name(link.id) : link.name);
    out.push_back('\n');
    for (const int s : {0, 1}) {
      out.append("S ");
      out.append(s == 0 ? "syslog" : "isis");
      out.append(" failures=");
      put_i64(out, row.failure_count[s]);
      out.append(" downtime_ms=");
      put_i64(out, row.downtime_ms[s]);
      out.push_back('\n');
    }
    for (const auto* f : row.failures) {
      out.append("F ");
      out.append(source_tag(f->source));
      out.push_back(' ');
      put_i64(out, f->span.begin.unix_millis());
      out.push_back(' ');
      put_i64(out, f->span.end.unix_millis());
      out.push_back(' ');
      out.push_back(f->in_flap_episode ? '1' : '0');
      out.push_back('\n');
    }
    for (const auto& [e, source] : row.episodes) {
      out.append("E ");
      out.append(source_tag(source));
      out.push_back(' ');
      put_i64(out, e->span.begin.unix_millis());
      out.push_back(' ');
      put_i64(out, e->span.end.unix_millis());
      out.push_back(' ');
      put_i64(out, static_cast<std::int64_t>(e->failure_count));
      out.push_back('\n');
    }
    for (const auto* t : row.transitions) {
      out.append("T ");
      put_i64(out, t->time.unix_millis());
      out.append(t->dir == LinkDirection::kUp ? " up" : " down");
      out.append(" reporter=");
      out.append(anon ? anon->map_view(t->reporter) : t->reporter.view());
      out.append(" reason=");
      out.append(anon ? std::string_view(kRedactedText)
                      : std::string_view(t->reason));
      out.push_back('\n');
    }
    for (const auto* a : row.alerts) {
      out.append("A ");
      put_i64(out, a->time.unix_millis());
      out.push_back(' ');
      out.append(detect::alert_kind_name(a->kind));
      out.push_back(' ');
      put_f64(out, a->score);
      out.push_back('\n');
    }
    out.append("end\n");
  }
  return out;
}

}  // namespace netfail::svc
