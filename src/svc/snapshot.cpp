#include "src/svc/snapshot.hpp"

#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <tuple>

#include "src/common/sync.hpp"
#include "src/stream/sharded.hpp"

namespace netfail::svc {
namespace {

Error truncated_error() {
  return make_error(ErrorCode::kTruncated, "snapshot section truncated");
}

void put_time(ByteWriter& w, TimePoint t) { w.i64(t.unix_millis()); }
TimePoint get_time(ByteReader& r) {
  return TimePoint::from_unix_millis(r.i64());
}

void put_dir(ByteWriter& w, LinkDirection d) {
  w.u8(d == LinkDirection::kUp ? 1 : 0);
}
LinkDirection get_dir(ByteReader& r) {
  return r.u8() != 0 ? LinkDirection::kUp : LinkDirection::kDown;
}

void put_failure(ByteWriter& w, const analysis::Failure& f) {
  w.u32(f.link.value());
  put_time(w, f.span.begin);
  put_time(w, f.span.end);
  w.u8(f.source == analysis::Source::kIsis ? 1 : 0);
  w.u8(f.in_flap_episode ? 1 : 0);
}
analysis::Failure get_failure(ByteReader& r) {
  analysis::Failure f;
  f.link = LinkId(r.u32());
  f.span.begin = get_time(r);
  f.span.end = get_time(r);
  f.source = r.u8() != 0 ? analysis::Source::kIsis : analysis::Source::kSyslog;
  f.in_flap_episode = r.u8() != 0;
  return f;
}

/// File-local symbol id -> process symbol. Sets `*bad` on an id the table
/// does not cover (a corrupt section that still passed the checksum is
/// practically impossible, but decode stays total anyway).
Symbol get_sym(ByteReader& r, const std::vector<Symbol>& syms, bool* bad) {
  const std::uint32_t id = r.u32();
  if (id == SymbolSink::kInvalidLocal) return Symbol::invalid();
  if (id >= syms.size()) {
    *bad = true;
    return Symbol::invalid();
  }
  return syms[id];
}

}  // namespace

std::uint64_t census_fingerprint(const LinkCensus& census) {
  std::uint64_t h = stream::kFnv64OffsetBasis;
  const auto mix = [&h](std::string_view bytes) {
    for (const char c : bytes) {
      h ^= static_cast<std::uint8_t>(c);
      h *= stream::kFnv64Prime;
    }
  };
  const std::uint64_t n = census.size();
  mix(std::string_view(reinterpret_cast<const char*>(&n), sizeof(n)));
  for (const CensusLink& link : census.links()) {
    mix(link.name);
    mix(std::string_view("\0", 1));
  }
  return h;
}

std::uint32_t SymbolSink::local_id(Symbol s) {
  if (!s.valid()) return kInvalidLocal;
  if (s.value() >= local_by_global_.size()) {
    local_by_global_.resize(s.value() + 1, kInvalidLocal);
  }
  std::uint32_t& slot = local_by_global_[s.value()];
  if (slot == kInvalidLocal) {
    slot = static_cast<std::uint32_t>(order_.size());
    order_.push_back(s.value());
  }
  return slot;
}

// ---- LinkTracker ------------------------------------------------------------

void EngineCodec::encode_tracker(const stream::LinkTracker& t, ByteWriter& w) {
  w.u32(static_cast<std::uint32_t>(t.links_.size()));
  for (const auto& [link, pl] : t.links_) {  // std::map: LinkId order
    w.u32(link.value());
    put_dir(w, pl.walker.state);
    put_time(w, pl.walker.failure_start);
    put_time(w, pl.walker.last_up);
    w.u8(pl.walker.has_last_up ? 1 : 0);
    w.u8(pl.walker.dropped_episode ? 1 : 0);
    w.u8(pl.walker.has_last_kept ? 1 : 0);
    put_time(w, pl.walker.last_kept_time);
    put_dir(w, pl.walker.last_kept_dir);
    // The pending buffer is a binary min-heap stored in a vector; raw
    // vector order round-trips the heap property exactly.
    w.u32(static_cast<std::uint32_t>(pl.pending.size()));
    for (const auto& p : pl.pending) {
      put_time(w, p.time);
      w.u64(p.seq);
      put_dir(w, p.dir);
    }
    w.u32(static_cast<std::uint32_t>(pl.held.size()));
    for (const auto& f : pl.held) put_failure(w, f);
    w.u32(pl.stats.link.value());
    w.u64(pl.stats.failures);
    w.i64(pl.stats.downtime.total_millis());
    put_dir(w, pl.stats.state);
    put_time(w, pl.stats.last_transition);
    w.u64(pl.stats.flap_episodes);
    w.u64(pl.stats.failures_in_episodes);
    w.u64(pl.run_count);
    put_time(w, pl.run_start);
    put_time(w, pl.run_last_end);
    put_time(w, pl.last_active);
  }
  w.u64(t.counters_.transitions_ingested);
  w.u64(t.counters_.failures_released);
  w.u64(t.counters_.flap_episodes);
  w.u64(t.counters_.links_evicted);
  w.u64(t.counters_.pending_peak);
  w.u64(t.counters_.double_downs);
  w.u64(t.counters_.double_ups);
  w.u64(t.counters_.merged_duplicates);
  w.u64(t.counters_.unterminated);
  w.u64(t.walker_counters_.double_downs);
  w.u64(t.walker_counters_.double_ups);
  w.u64(t.walker_counters_.merged_duplicates);
  w.u64(t.walker_counters_.unterminated);
  w.u32(static_cast<std::uint32_t>(t.recent_.size()));
  for (const auto& f : t.recent_) put_failure(w, f);
  w.i64(t.total_downtime_.total_millis());
  put_time(w, t.high_water_);
  w.u8(t.has_high_water_ ? 1 : 0);
  w.u64(t.next_seq_);
  w.u64(t.pending_total_);
  w.u8(t.finished_ ? 1 : 0);
}

Status EngineCodec::decode_tracker(ByteReader& r, stream::LinkTracker& t) {
  t.links_.clear();
  const std::uint32_t link_count = r.u32();
  for (std::uint32_t i = 0; i < link_count && r.ok(); ++i) {
    const LinkId link(r.u32());
    auto& pl = t.links_[link];
    pl.walker.state = get_dir(r);
    pl.walker.failure_start = get_time(r);
    pl.walker.last_up = get_time(r);
    pl.walker.has_last_up = r.u8() != 0;
    pl.walker.dropped_episode = r.u8() != 0;
    pl.walker.has_last_kept = r.u8() != 0;
    pl.walker.last_kept_time = get_time(r);
    pl.walker.last_kept_dir = get_dir(r);
    const std::uint32_t pending = r.u32();
    pl.pending.clear();
    for (std::uint32_t j = 0; j < pending && r.ok(); ++j) {
      stream::LinkTracker::PendingTransition p;
      p.time = get_time(r);
      p.seq = r.u64();
      p.dir = get_dir(r);
      pl.pending.push_back(p);
    }
    const std::uint32_t held = r.u32();
    pl.held.clear();
    for (std::uint32_t j = 0; j < held && r.ok(); ++j) {
      pl.held.push_back(get_failure(r));
    }
    pl.stats.link = LinkId(r.u32());
    pl.stats.failures = static_cast<std::size_t>(r.u64());
    pl.stats.downtime = Duration::millis(r.i64());
    pl.stats.state = get_dir(r);
    pl.stats.last_transition = get_time(r);
    pl.stats.flap_episodes = static_cast<std::size_t>(r.u64());
    pl.stats.failures_in_episodes = static_cast<std::size_t>(r.u64());
    pl.run_count = static_cast<std::size_t>(r.u64());
    pl.run_start = get_time(r);
    pl.run_last_end = get_time(r);
    pl.last_active = get_time(r);
  }
  t.counters_.transitions_ingested = r.u64();
  t.counters_.failures_released = r.u64();
  t.counters_.flap_episodes = r.u64();
  t.counters_.links_evicted = r.u64();
  t.counters_.pending_peak = r.u64();
  t.counters_.double_downs = r.u64();
  t.counters_.double_ups = r.u64();
  t.counters_.merged_duplicates = r.u64();
  t.counters_.unterminated = r.u64();
  t.walker_counters_.failures.clear();
  t.walker_counters_.ambiguous.clear();
  t.walker_counters_.double_downs = static_cast<std::size_t>(r.u64());
  t.walker_counters_.double_ups = static_cast<std::size_t>(r.u64());
  t.walker_counters_.merged_duplicates = static_cast<std::size_t>(r.u64());
  t.walker_counters_.unterminated = static_cast<std::size_t>(r.u64());
  t.ambiguous_scratch_.clear();
  t.recent_.clear();
  const std::uint32_t recent = r.u32();
  for (std::uint32_t i = 0; i < recent && r.ok(); ++i) {
    t.recent_.push_back(get_failure(r));
  }
  t.total_downtime_ = Duration::millis(r.i64());
  t.high_water_ = get_time(r);
  t.has_high_water_ = r.u8() != 0;
  t.next_seq_ = r.u64();
  t.pending_total_ = static_cast<std::size_t>(r.u64());
  t.finished_ = r.u8() != 0;
  if (!r.ok()) return truncated_error();
  return Status::ok_status();
}

// ---- isis::StreamingExtractor -----------------------------------------------

void EngineCodec::encode_extractor(const isis::StreamingExtractor& x,
                                   SymbolSink& syms, ByteWriter& w) {
  w.u64(x.stats_.lsps_processed);
  w.u64(x.stats_.checksum_failures);
  w.u64(x.stats_.parse_failures);
  w.u64(x.stats_.stale_lsps);
  w.u64(x.stats_.purges);
  w.u64(x.stats_.unknown_host_pairs);
  w.u64(x.stats_.unknown_prefixes);
  w.u64(x.stats_.multilink_transitions);

  // Unordered containers are written in sorted order so the section bytes
  // are a pure function of state (intern order and hash seeds are not).
  std::vector<const std::pair<const OsiSystemId,
                              isis::StreamingExtractor::SourceState>*>
      sources;
  sources.reserve(x.sources_.size());
  for (const auto& kv : x.sources_) sources.push_back(&kv);
  std::sort(sources.begin(), sources.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  w.u32(static_cast<std::uint32_t>(sources.size()));
  for (const auto* kv : sources) {
    w.raw(kv->first.bytes().data(), 6);
    const auto& src = kv->second;
    w.u32(src.sequence);
    w.u32(syms.local_id(src.hostname));
    w.u32(static_cast<std::uint32_t>(src.adjacency_count.size()));
    for (const auto& [neighbor, count] : src.adjacency_count) {
      w.raw(neighbor.bytes().data(), 6);
      w.i64(count);
    }
    w.u32(static_cast<std::uint32_t>(src.prefixes.size()));
    for (const auto& p : src.prefixes) {
      w.u32(p.network().value());
      w.u8(static_cast<std::uint8_t>(p.length()));
    }
    w.u8(src.initialized ? 1 : 0);
  }

  // Pair keys pack process-local symbol ids; store the symbols themselves
  // (lexicographically-first host first, matching sym::pair_key) and let
  // restore recompute the key from re-interned symbols.
  std::vector<std::tuple<Symbol, Symbol,
                         const isis::StreamingExtractor::PairState*>>
      pairs;
  pairs.reserve(x.pairs_.size());
  for (const auto& [key, st] : x.pairs_) {
    pairs.emplace_back(Symbol::from_id(static_cast<std::uint32_t>(key >> 32)),
                       Symbol::from_id(static_cast<std::uint32_t>(key)), &st);
  }
  std::sort(pairs.begin(), pairs.end(), [](const auto& a, const auto& b) {
    if (std::get<0>(a) == std::get<0>(b)) {
      return sym::lex_less(std::get<1>(a), std::get<1>(b));
    }
    return sym::lex_less(std::get<0>(a), std::get<0>(b));
  });
  w.u32(static_cast<std::uint32_t>(pairs.size()));
  for (const auto& [lo, hi, st] : pairs) {
    w.u32(syms.local_id(lo));
    w.u32(syms.local_id(hi));
    w.i64(st->count_ab);
    w.i64(st->count_ba);
    w.u8(st->active ? 1 : 0);
    w.i64(st->last_min);
  }

  std::vector<Symbol> hosts(x.initialized_hosts_.begin(),
                            x.initialized_hosts_.end());
  std::sort(hosts.begin(), hosts.end(), sym::lex_less);
  w.u32(static_cast<std::uint32_t>(hosts.size()));
  for (const Symbol h : hosts) w.u32(syms.local_id(h));

  std::vector<std::pair<Ipv4Prefix, int>> advertisers(
      x.prefix_advertisers_.begin(), x.prefix_advertisers_.end());
  std::sort(advertisers.begin(), advertisers.end());
  w.u32(static_cast<std::uint32_t>(advertisers.size()));
  for (const auto& [prefix, count] : advertisers) {
    w.u32(prefix.network().value());
    w.u8(static_cast<std::uint8_t>(prefix.length()));
    w.i64(count);
  }
}

Status EngineCodec::decode_extractor(ByteReader& r,
                                     const std::vector<Symbol>& syms,
                                     isis::StreamingExtractor& x) {
  bool bad_sym = false;
  x.stats_.lsps_processed = static_cast<std::size_t>(r.u64());
  x.stats_.checksum_failures = static_cast<std::size_t>(r.u64());
  x.stats_.parse_failures = static_cast<std::size_t>(r.u64());
  x.stats_.stale_lsps = static_cast<std::size_t>(r.u64());
  x.stats_.purges = static_cast<std::size_t>(r.u64());
  x.stats_.unknown_host_pairs = static_cast<std::size_t>(r.u64());
  x.stats_.unknown_prefixes = static_cast<std::size_t>(r.u64());
  x.stats_.multilink_transitions = static_cast<std::size_t>(r.u64());

  x.sources_.clear();
  const std::uint32_t source_count = r.u32();
  for (std::uint32_t i = 0; i < source_count && r.ok(); ++i) {
    std::array<std::uint8_t, 6> id{};
    r.raw(id.data(), id.size());
    auto& src = x.sources_[OsiSystemId(id)];
    src.sequence = r.u32();
    src.hostname = get_sym(r, syms, &bad_sym);
    const std::uint32_t adjacencies = r.u32();
    src.adjacency_count.clear();
    for (std::uint32_t j = 0; j < adjacencies && r.ok(); ++j) {
      std::array<std::uint8_t, 6> nb{};
      r.raw(nb.data(), nb.size());
      src.adjacency_count.emplace_back(OsiSystemId(nb),
                                       static_cast<int>(r.i64()));
    }
    const std::uint32_t prefixes = r.u32();
    src.prefixes.clear();
    for (std::uint32_t j = 0; j < prefixes && r.ok(); ++j) {
      const Ipv4Address network(r.u32());
      src.prefixes.emplace_back(network, static_cast<int>(r.u8()));
    }
    src.initialized = r.u8() != 0;
  }

  x.pairs_.clear();
  const std::uint32_t pair_count = r.u32();
  for (std::uint32_t i = 0; i < pair_count && r.ok(); ++i) {
    const Symbol lo = get_sym(r, syms, &bad_sym);
    const Symbol hi = get_sym(r, syms, &bad_sym);
    auto& st = x.pairs_[sym::pair_key(lo, hi)];
    st.count_ab = static_cast<int>(r.i64());
    st.count_ba = static_cast<int>(r.i64());
    st.active = r.u8() != 0;
    st.last_min = static_cast<int>(r.i64());
  }

  x.initialized_hosts_.clear();
  const std::uint32_t host_count = r.u32();
  for (std::uint32_t i = 0; i < host_count && r.ok(); ++i) {
    x.initialized_hosts_.insert(get_sym(r, syms, &bad_sym));
  }

  x.prefix_advertisers_.clear();
  const std::uint32_t advertiser_count = r.u32();
  for (std::uint32_t i = 0; i < advertiser_count && r.ok(); ++i) {
    const Ipv4Address network(r.u32());
    const int length = static_cast<int>(r.u8());
    x.prefix_advertisers_[Ipv4Prefix(network, length)] =
        static_cast<int>(r.i64());
  }

  if (!r.ok()) return truncated_error();
  if (bad_sym) {
    return make_error(ErrorCode::kParseError,
                      "snapshot references a symbol id outside its table");
  }
  return Status::ok_status();
}

// ---- detect::LinkDetector ---------------------------------------------------

void EngineCodec::encode_detector(const detect::LinkDetector& d,
                                  SymbolSink& syms, ByteWriter& w) {
  w.u64(d.counters_.syslog_observed);
  w.u64(d.counters_.isis_observed);
  w.u64(d.counters_.windows_closed);

  const std::vector<detect::LinkAlert> alerts = d.sink_.snapshot();
  w.u32(static_cast<std::uint32_t>(alerts.size()));
  for (const auto& a : alerts) {
    w.u32(a.link.value());
    put_time(w, a.time);
    w.u8(static_cast<std::uint8_t>(a.kind));
    w.f64(a.score);
    w.u32(syms.local_id(a.template_id));
  }

  std::vector<std::pair<LinkId, const detect::LinkDetector::LinkState*>> links;
  links.reserve(d.links_.size());
  for (const auto& [link, st] : d.links_) links.emplace_back(link, &st);
  std::sort(links.begin(), links.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.u32(static_cast<std::uint32_t>(links.size()));
  for (const auto& [link, st] : links) {
    w.u32(link.value());
    w.u8(st->has_last_down ? 1 : 0);
    put_time(w, st->last_down);
    w.f64(st->mean_gap_s);
    w.f64(st->cusum);
    w.u8(st->has_hard_alert ? 1 : 0);
    put_time(w, st->last_hard_alert);
    w.u8(st->has_cusum_alert ? 1 : 0);
    put_time(w, st->last_cusum_alert);
  }

  // Cell keys pack (link id, process symbol id); store (link, symbol) and
  // recompute keys on restore, sorted by (link, lexicographic template).
  std::vector<std::tuple<LinkId, Symbol, const detect::LinkDetector::DriftCell*>>
      cells;
  cells.reserve(d.cells_.size());
  for (const auto& [key, cell] : d.cells_) {
    cells.emplace_back(LinkId(static_cast<std::uint32_t>(key >> 32)),
                       Symbol::from_id(static_cast<std::uint32_t>(key)),
                       &cell);
  }
  std::sort(cells.begin(), cells.end(), [](const auto& a, const auto& b) {
    if (std::get<0>(a) != std::get<0>(b)) {
      return std::get<0>(a) < std::get<0>(b);
    }
    return sym::lex_less(std::get<1>(a), std::get<1>(b));
  });
  w.u32(static_cast<std::uint32_t>(cells.size()));
  for (const auto& [link, tmpl, cell] : cells) {
    w.u32(link.value());
    w.u32(syms.local_id(tmpl));
    w.u32(cell->count);
    put_time(w, cell->last_event);
    w.f64(cell->ewma);
    w.i64(cell->ewma_window);
  }

  // active_ is insertion-ordered and close_window() depends on that order;
  // serialize it verbatim.
  w.u32(static_cast<std::uint32_t>(d.active_.size()));
  for (const std::uint64_t key : d.active_) {
    w.u32(static_cast<std::uint32_t>(key >> 32));
    w.u32(syms.local_id(Symbol::from_id(static_cast<std::uint32_t>(key))));
  }
  w.i64(d.window_idx_);
  w.u8(d.finished_ ? 1 : 0);
}

Status EngineCodec::decode_detector(ByteReader& r,
                                    const std::vector<Symbol>& syms,
                                    detect::LinkDetector& d) {
  bool bad_sym = false;
  d.counters_.syslog_observed = r.u64();
  d.counters_.isis_observed = r.u64();
  d.counters_.windows_closed = r.u64();

  std::vector<detect::LinkAlert> alerts;
  const std::uint32_t alert_count = r.u32();
  alerts.reserve(std::min<std::uint32_t>(alert_count, 4096));
  for (std::uint32_t i = 0; i < alert_count && r.ok(); ++i) {
    detect::LinkAlert a;
    a.link = LinkId(r.u32());
    a.time = get_time(r);
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(detect::AlertKind::kTemplateDrift)) {
      return make_error(ErrorCode::kParseError,
                        "snapshot alert kind out of range");
    }
    a.kind = static_cast<detect::AlertKind>(kind);
    a.score = r.f64();
    a.template_id = get_sym(r, syms, &bad_sym);
    alerts.push_back(a);
  }
  {
    sync::MutexLock lock(d.sink_.mu_);
    d.sink_.alerts_ = std::move(alerts);
  }

  d.links_.clear();
  const std::uint32_t link_count = r.u32();
  for (std::uint32_t i = 0; i < link_count && r.ok(); ++i) {
    auto& st = d.links_[LinkId(r.u32())];
    st.has_last_down = r.u8() != 0;
    st.last_down = get_time(r);
    st.mean_gap_s = r.f64();
    st.cusum = r.f64();
    st.has_hard_alert = r.u8() != 0;
    st.last_hard_alert = get_time(r);
    st.has_cusum_alert = r.u8() != 0;
    st.last_cusum_alert = get_time(r);
  }

  d.cells_.clear();
  const std::uint32_t cell_count = r.u32();
  for (std::uint32_t i = 0; i < cell_count && r.ok(); ++i) {
    const LinkId link(r.u32());
    const Symbol tmpl = get_sym(r, syms, &bad_sym);
    auto& cell = d.cells_[detect::LinkDetector::cell_key(link, tmpl)];
    cell.count = r.u32();
    cell.last_event = get_time(r);
    cell.ewma = r.f64();
    cell.ewma_window = r.i64();
  }

  d.active_.clear();
  const std::uint32_t active_count = r.u32();
  for (std::uint32_t i = 0; i < active_count && r.ok(); ++i) {
    const LinkId link(r.u32());
    const Symbol tmpl = get_sym(r, syms, &bad_sym);
    d.active_.push_back(detect::LinkDetector::cell_key(link, tmpl));
  }
  d.window_idx_ = r.i64();
  d.finished_ = r.u8() != 0;
  d.scratch_.clear();

  if (!r.ok()) return truncated_error();
  if (bad_sym) {
    return make_error(ErrorCode::kParseError,
                      "snapshot references a symbol id outside its table");
  }
  return Status::ok_status();
}

// ---- StreamEngine -----------------------------------------------------------

void EngineCodec::encode(const stream::StreamEngine& engine, SymbolSink& syms,
                         ByteWriter& w) {
  w.u32(engine.options_.shard);
  w.u64(engine.events_);
  w.u64(engine.syslog_events_);
  w.u64(engine.lsp_events_);
  put_time(w, engine.high_water_);
  w.u8(engine.finished_ ? 1 : 0);
  w.u64(engine.syslog_stats_.lines_seen);
  w.u64(engine.syslog_stats_.parse_failures);
  w.u64(engine.syslog_stats_.irrelevant_lines);
  w.u64(engine.syslog_stats_.unresolved_links);
  encode_extractor(engine.isis_extractor_, syms, w);
  encode_tracker(engine.isis_tracker_, w);
  encode_tracker(engine.syslog_tracker_, w);
  encode_detector(engine.detector_, syms, w);
}

Status EngineCodec::decode(ByteReader& r, const std::vector<Symbol>& syms,
                           stream::StreamEngine& engine) {
  const std::uint32_t shard = r.u32();
  if (!r.ok()) return truncated_error();
  if (shard != engine.options_.shard) {
    return make_error(
        ErrorCode::kInvalidArgument,
        "snapshot section is for shard " + std::to_string(shard) +
            ", engine is shard " + std::to_string(engine.options_.shard));
  }
  engine.events_ = r.u64();
  engine.syslog_events_ = r.u64();
  engine.lsp_events_ = r.u64();
  engine.high_water_ = get_time(r);
  engine.finished_ = r.u8() != 0;
  engine.syslog_stats_.lines_seen = static_cast<std::size_t>(r.u64());
  engine.syslog_stats_.parse_failures = static_cast<std::size_t>(r.u64());
  engine.syslog_stats_.irrelevant_lines = static_cast<std::size_t>(r.u64());
  engine.syslog_stats_.unresolved_links = static_cast<std::size_t>(r.u64());
  engine.scratch_.clear();
  if (Status s = decode_extractor(r, syms, engine.isis_extractor_); !s.ok()) {
    return s;
  }
  if (Status s = decode_tracker(r, engine.isis_tracker_); !s.ok()) return s;
  if (Status s = decode_tracker(r, engine.syslog_tracker_); !s.ok()) return s;
  if (Status s = decode_detector(r, syms, engine.detector_); !s.ok()) return s;
  if (!r.ok()) return truncated_error();
  if (!r.exhausted()) {
    return make_error(ErrorCode::kParseError,
                      "snapshot section has trailing bytes");
  }
  return Status::ok_status();
}

// ---- file framing -----------------------------------------------------------

Status save_snapshot(const std::string& path,
                     std::span<const stream::StreamEngine* const> shards,
                     const LinkCensus& census) {
  SymbolSink syms;
  std::vector<std::string> sections;
  sections.reserve(shards.size());
  for (const stream::StreamEngine* engine : shards) {
    ByteWriter sw;
    EngineCodec::encode(*engine, syms, sw);
    sections.push_back(sw.take());
  }

  ByteWriter body;
  body.u64(census_fingerprint(census));
  body.u32(static_cast<std::uint32_t>(shards.size()));
  body.u32(static_cast<std::uint32_t>(syms.order().size()));
  for (const std::uint32_t global_id : syms.order()) {
    body.str(sym::id_view(global_id));
  }
  for (const std::string& section : sections) {
    body.u64(section.size());
    body.raw(section.data(), section.size());
  }

  ByteWriter file;
  file.raw(kSnapshotMagic, sizeof(kSnapshotMagic));
  file.u32(kSnapshotVersion);
  file.u64(body.size());
  file.raw(body.bytes().data(), body.size());
  file.u64(stream::stable_hash64(body.bytes()));

  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return make_error(ErrorCode::kInvalidArgument,
                      "cannot open snapshot temp file " + tmp + ": " +
                          std::strerror(errno));
  }
  const std::string& bytes = file.bytes();
  const bool wrote =
      std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size() &&
      std::fflush(f) == 0 && ::fsync(::fileno(f)) == 0;
  if (std::fclose(f) != 0 || !wrote) {
    std::remove(tmp.c_str());
    return make_error(ErrorCode::kInternal,
                      "short write to snapshot temp file " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    std::remove(tmp.c_str());
    return make_error(ErrorCode::kInternal,
                      "cannot rename snapshot into place at " + path + ": " +
                          std::strerror(err));
  }
  return Status::ok_status();
}

Result<LoadedSnapshot> LoadedSnapshot::load(const std::string& path,
                                            const LinkCensus& census) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return make_error(ErrorCode::kNotFound,
                      "no snapshot at " + path + ": " + std::strerror(errno));
  }
  std::string data;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return make_error(ErrorCode::kInternal, "error reading snapshot " + path);
  }

  constexpr std::size_t kHeader = sizeof(kSnapshotMagic) + 4 + 8;
  if (data.size() < kHeader) {
    return make_error(ErrorCode::kTruncated,
                      "snapshot header truncated in " + path);
  }
  if (std::memcmp(data.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return make_error(ErrorCode::kParseError,
                      path + " is not a netfail snapshot");
  }
  ByteReader header(std::string_view(data).substr(sizeof(kSnapshotMagic)));
  const std::uint32_t version = header.u32();
  if (version > kSnapshotVersion) {
    return make_error(ErrorCode::kUnsupported,
                      "snapshot format version " + std::to_string(version) +
                          " is newer than supported version " +
                          std::to_string(kSnapshotVersion));
  }
  const std::uint64_t body_len = header.u64();
  if (data.size() < kHeader + body_len + 8) {
    return make_error(ErrorCode::kTruncated,
                      "snapshot body truncated in " + path);
  }
  const std::string_view body_view =
      std::string_view(data).substr(kHeader, body_len);
  ByteReader trailer(
      std::string_view(data).substr(kHeader + body_len, 8));
  const std::uint64_t stored_checksum = trailer.u64();
  if (stream::stable_hash64(body_view) != stored_checksum) {
    return make_error(ErrorCode::kChecksumMismatch,
                      "snapshot checksum mismatch in " + path);
  }

  LoadedSnapshot snap;
  snap.body_ = std::string(body_view);
  ByteReader r{std::string_view(snap.body_)};
  const std::uint64_t fingerprint = r.u64();
  if (fingerprint != census_fingerprint(census)) {
    return make_error(ErrorCode::kInvalidArgument,
                      "snapshot census fingerprint mismatch: the snapshot was "
                      "taken under a different link census");
  }
  const std::uint32_t shard_count = r.u32();
  if (!r.ok() || shard_count == 0 || shard_count > 4096) {
    return make_error(ErrorCode::kParseError,
                      "snapshot shard count out of range");
  }
  const std::uint32_t symbol_count = r.u32();
  snap.symbols_.reserve(std::min<std::uint32_t>(symbol_count, 65536));
  for (std::uint32_t i = 0; i < symbol_count && r.ok(); ++i) {
    snap.symbols_.emplace_back(r.str());
  }
  for (std::uint32_t i = 0; i < shard_count && r.ok(); ++i) {
    const std::uint64_t len = r.u64();
    const std::size_t offset = r.position();
    if (!r.skip(len)) break;
    snap.sections_.emplace_back(offset, static_cast<std::size_t>(len));
  }
  if (!r.ok() || snap.sections_.size() != shard_count) {
    return make_error(ErrorCode::kTruncated,
                      "snapshot section table truncated in " + path);
  }
  if (!r.exhausted()) {
    return make_error(ErrorCode::kParseError,
                      "snapshot body has trailing bytes");
  }
  return snap;
}

Status LoadedSnapshot::restore_shard(std::uint32_t shard,
                                     stream::StreamEngine& engine) const {
  if (shard >= sections_.size()) {
    return make_error(ErrorCode::kInvalidArgument,
                      "snapshot has " + std::to_string(sections_.size()) +
                          " shard(s); cannot restore shard " +
                          std::to_string(shard));
  }
  const auto [offset, len] = sections_[shard];
  // Never-partial guarantee: decode into a scratch copy (which preserves
  // the census pointer, options and callbacks) and commit only on success.
  stream::StreamEngine scratch(engine);
  ByteReader r{std::string_view(body_).substr(offset, len)};
  if (Status s = EngineCodec::decode(r, symbols_, scratch); !s.ok()) return s;
  engine = std::move(scratch);
  return Status::ok_status();
}

}  // namespace netfail::svc
