// svc::ByteWriter / svc::ByteReader — the little-endian byte codec under
// the durable snapshot format.
//
// Deliberately tiny: fixed-width integers (explicit little-endian, so a
// snapshot written on any host reads back on any other), IEEE doubles via
// bit_cast, and u32-length-prefixed byte strings. The reader is
// fail-soft: every accessor returns a zero value once the buffer runs
// short and latches !ok(), so decode loops terminate and the caller turns
// the latch into one kTruncated error instead of checking every field.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace netfail::svc {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  void raw(const void* data, std::size_t n) {
    buf_.append(static_cast<const char*>(data), n);
  }

  /// u32 length + bytes.
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.append(s);
  }

  const std::string& bytes() const { return buf_; }
  std::string take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  std::string buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : d_(data) {}

  std::uint8_t u8() {
    std::uint8_t v = 0;
    take(&v, 1);
    return v;
  }

  std::uint32_t u32() {
    std::uint8_t b[4] = {};
    take(b, 4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
    return v;
  }

  std::uint64_t u64() {
    std::uint8_t b[8] = {};
    take(b, 8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    return v;
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  double f64() { return std::bit_cast<double>(u64()); }

  bool raw(void* out, std::size_t n) { return take(out, n); }

  /// u32 length + bytes; a view into the underlying buffer.
  std::string_view str() {
    const std::uint32_t n = u32();
    if (!ok_ || d_.size() - pos_ < n) {
      ok_ = false;
      return {};
    }
    const std::string_view s = d_.substr(pos_, n);
    pos_ += n;
    return s;
  }

  bool skip(std::size_t n) {
    if (!ok_ || d_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  bool ok() const { return ok_; }
  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return d_.size() - pos_; }
  /// True when the whole buffer was consumed cleanly.
  bool exhausted() const { return ok_ && pos_ == d_.size(); }

 private:
  bool take(void* out, std::size_t n) {
    if (!ok_ || d_.size() - pos_ < n) {
      ok_ = false;
      std::memset(out, 0, n);
      return false;
    }
    std::memcpy(out, d_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  std::string_view d_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace netfail::svc
