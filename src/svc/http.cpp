#include "src/svc/http.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>

#include "src/common/metrics.hpp"

namespace netfail::svc {
namespace {

/// Request heads larger than this are refused (431) — the whole API fits
/// in a line; anything bigger is a client bug or abuse.
constexpr std::size_t kMaxRequestHead = 16 * 1024;

void put_i64(std::string& out, std::int64_t v) {
  char buf[24];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, p);
}

void put_f64(std::string& out, double v) {
  char buf[40];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, p);
}

void put_json_string(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out.append("\\\""); break;
      case '\\': out.append("\\\\"); break;
      case '\n': out.append("\\n"); break;
      case '\r': out.append("\\r"); break;
      case '\t': out.append("\\t"); break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out.append("\\u00");
          out.push_back("0123456789abcdef"[(c >> 4) & 0xf]);
          out.push_back("0123456789abcdef"[c & 0xf]);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// RFC 3986 percent-decoding; '+' is left alone (link names never use
/// form encoding). Invalid escapes pass through verbatim.
std::string percent_decode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      const int hi = hex_value(s[i + 1]);
      const int lo = hex_value(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>((hi << 4) | lo));
        i += 2;
        continue;
      }
    }
    out.push_back(s[i]);
  }
  return out;
}

bool query_has_flag(std::string_view query, std::string_view key) {
  while (!query.empty()) {
    const std::size_t amp = query.find('&');
    const std::string_view param = query.substr(0, amp);
    if (param == key) return true;
    if (param.size() == key.size() + 2 && param.substr(0, key.size()) == key &&
        param[key.size()] == '=' && param.back() == '1') {
      return true;
    }
    if (amp == std::string_view::npos) break;
    query.remove_prefix(amp + 1);
  }
  return false;
}

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
  }
  return "OK";
}

std::string error_body(std::string_view message) {
  std::string out = "{\"error\":";
  put_json_string(out, message);
  out.append("}\n");
  return out;
}

/// ASCII case-insensitive comparison for header names.
bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const char ca = a[i] >= 'A' && a[i] <= 'Z' ? a[i] - 'A' + 'a' : a[i];
    const char cb = b[i] >= 'A' && b[i] <= 'Z' ? b[i] - 'A' + 'a' : b[i];
    if (ca != cb) return false;
  }
  return true;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

/// One link's merged row, assembled from the owning shard's checkpoint.
struct LinkRow {
  stream::LinkRunningStats syslog;
  stream::LinkRunningStats isis;
  std::uint64_t alerts_hard = 0;
  std::uint64_t alerts_cusum = 0;
  std::uint64_t alerts_drift = 0;
};

struct QueryView {
  std::vector<LinkRow> rows;  // indexed by LinkId::index()
  TimePoint high_water;
  std::uint64_t events = 0;
  std::size_t shards = 0;
};

QueryView assemble(const std::vector<stream::Checkpoint>& checkpoints,
                   std::size_t link_count) {
  QueryView view;
  view.rows.resize(link_count);
  view.shards = checkpoints.size();
  for (const stream::Checkpoint& cp : checkpoints) {
    const stream::StreamEngine& engine = cp.state();
    view.events += cp.events_ingested();
    view.high_water = std::max(view.high_water, cp.high_water());
    for (const auto& st : engine.syslog_tracker().link_stats()) {
      if (st.link.valid() && st.link.index() < link_count) {
        view.rows[st.link.index()].syslog = st;
      }
    }
    for (const auto& st : engine.isis_tracker().link_stats()) {
      if (st.link.valid() && st.link.index() < link_count) {
        view.rows[st.link.index()].isis = st;
      }
    }
    for (const auto& alert : engine.detector().sink().snapshot()) {
      if (!alert.link.valid() || alert.link.index() >= link_count) continue;
      LinkRow& row = view.rows[alert.link.index()];
      switch (alert.kind) {
        case detect::AlertKind::kHardDown: ++row.alerts_hard; break;
        case detect::AlertKind::kFlapCusum: ++row.alerts_cusum; break;
        case detect::AlertKind::kTemplateDrift: ++row.alerts_drift; break;
      }
    }
  }
  return view;
}

void put_source_stats(std::string& out, const stream::LinkRunningStats& st,
                      TimePoint period_begin, TimePoint high_water) {
  out.append("{\"failures\":");
  put_i64(out, static_cast<std::int64_t>(st.failures));
  out.append(",\"downtime_ms\":");
  put_i64(out, st.downtime.total_millis());
  out.append(",\"flap_episodes\":");
  put_i64(out, static_cast<std::int64_t>(st.flap_episodes));
  out.append(",\"state\":");
  put_json_string(out, st.state == LinkDirection::kUp ? "up" : "down");
  out.append(",\"availability\":");
  const std::int64_t span =
      high_water.unix_millis() - period_begin.unix_millis();
  double availability = 1.0;
  if (span > 0) {
    availability = 1.0 - static_cast<double>(st.downtime.total_millis()) /
                             static_cast<double>(span);
    availability = std::clamp(availability, 0.0, 1.0);
  }
  put_f64(out, availability);
  out.push_back('}');
}

}  // namespace

HttpServer::HttpServer(const LinkCensus& census, SnapshotFn snapshot_fn,
                       CheckpointFn checkpoint_fn, HttpOptions options)
    : census_(&census),
      snapshot_fn_(std::move(snapshot_fn)),
      checkpoint_fn_(std::move(checkpoint_fn)),
      options_(std::move(options)) {}

HttpServer::~HttpServer() { stop(); }

Status HttpServer::start() {
  auto listen = net::tcp_listen(options_.host, options_.port, 16);
  if (!listen.ok()) return listen.error();
  listen_fd_ = std::move(listen).value();
  auto port = net::local_port(listen_fd_);
  if (!port.ok()) return port.error();
  port_ = *port;
  if (Status s = net::set_nonblocking(listen_fd_); !s.ok()) return s;
  loop_.add(listen_fd_.get(), [this](short revents) {
    on_listen_ready(revents);
  });
  thread_ = std::thread([this] { loop_.run(); });
  running_ = true;
  return Status::ok_status();
}

void HttpServer::stop() {
  if (!running_) return;
  loop_.stop();
  thread_.join();
  loop_.drain_posted();
  conns_.clear();  // Fd destructors close the sockets
  loop_.remove(listen_fd_.get());
  listen_fd_.reset();
  running_ = false;
}

void HttpServer::on_listen_ready(short revents) {
  if ((revents & POLLIN) == 0) return;
  for (;;) {
    const int fd = ::accept(listen_fd_.get(), nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN / transient accept errors: poll again
    Conn conn;
    conn.fd = net::Fd(fd);
    (void)net::set_nonblocking(conn.fd);
    conns_.emplace(fd, std::move(conn));
    loop_.add(fd, [this, fd](short re) { on_conn_ready(fd, re); });
  }
}

void HttpServer::on_conn_ready(int fd, short revents) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& c = it->second;

  if ((revents & (POLLERR | POLLNVAL)) != 0) {
    close_conn(fd);
    return;
  }
  if ((revents & (POLLIN | POLLHUP)) != 0) {
    char buf[4096];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n > 0) {
        c.in.append(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n == 0) {  // peer closed; flush what we owe and drop
        c.close_after = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      close_conn(fd);
      return;
    }
    if (!process_input(c)) {
      close_conn(fd);
      return;
    }
  }
  if (!flush_output(c)) close_conn(fd);
}

bool HttpServer::process_input(Conn& c) {
  for (;;) {
    const std::size_t head_end = c.in.find("\r\n\r\n");
    if (head_end == std::string::npos
            ? c.in.size() > kMaxRequestHead   // head still growing
            : head_end > kMaxRequestHead) {   // complete but oversized
      queue_response(c,
                     Response{431, "application/json",
                              error_body("request head too large")},
                     false);
      return true;
    }
    if (head_end == std::string::npos) {
      return !(c.close_after && c.out.empty() && c.in.empty());
    }
    const std::string_view head = std::string_view(c.in).substr(0, head_end);

    // Request line: METHOD SP target SP HTTP/1.x
    const std::size_t line_end = head.find("\r\n");
    const std::string_view request_line = head.substr(
        0, line_end == std::string_view::npos ? head.size() : line_end);
    const std::size_t sp1 = request_line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
      queue_response(
          c, Response{400, "application/json", error_body("malformed request")},
          false);
      c.in.clear();
      return true;
    }
    const std::string method(request_line.substr(0, sp1));
    const std::string target(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
    const std::string_view version = request_line.substr(sp2 + 1);
    if (version.substr(0, 5) != "HTTP/") {
      queue_response(
          c, Response{400, "application/json", error_body("malformed request")},
          false);
      c.in.clear();
      return true;
    }

    // Headers: keep-alive is the HTTP/1.1 default; a request body on this
    // GET-only API is refused outright.
    bool keep_alive = version != "HTTP/1.0";
    bool has_body = false;
    std::string_view rest = line_end == std::string_view::npos
                                ? std::string_view{}
                                : head.substr(line_end + 2);
    while (!rest.empty()) {
      const std::size_t eol = rest.find("\r\n");
      const std::string_view line =
          rest.substr(0, eol == std::string_view::npos ? rest.size() : eol);
      const std::size_t colon = line.find(':');
      if (colon != std::string_view::npos) {
        const std::string_view key = trim(line.substr(0, colon));
        const std::string_view value = trim(line.substr(colon + 1));
        if (iequals(key, "connection")) {
          if (iequals(value, "close")) keep_alive = false;
          if (iequals(value, "keep-alive")) keep_alive = true;
        } else if (iequals(key, "content-length")) {
          has_body = value != "0";
        } else if (iequals(key, "transfer-encoding")) {
          has_body = true;
        }
      }
      if (eol == std::string_view::npos) break;
      rest.remove_prefix(eol + 2);
    }
    c.in.erase(0, head_end + 4);

    if (has_body) {
      queue_response(c,
                     Response{400, "application/json",
                              error_body("request bodies are not accepted")},
                     false);
      c.in.clear();
      return true;
    }
    queue_response(c, handle(method, target), keep_alive);
    if (!keep_alive) {
      c.in.clear();
      return true;
    }
  }
}

HttpServer::Response HttpServer::handle(std::string_view method,
                                        std::string_view target) {
  if (method != "GET") {
    return Response{405, "application/json",
                    error_body("only GET is supported")};
  }
  const std::size_t qmark = target.find('?');
  const std::string_view query =
      qmark == std::string_view::npos ? std::string_view{}
                                      : target.substr(qmark + 1);
  const std::string path = percent_decode(target.substr(0, qmark));
  const bool anonymize = query_has_flag(query, "anonymize");

  if (path == "/healthz") {
    const QueryView view = assemble(snapshot_fn_(), census_->size());
    std::string body = "{\"status\":\"ok\",\"links\":";
    put_i64(body, static_cast<std::int64_t>(census_->size()));
    body.append(",\"shards\":");
    put_i64(body, static_cast<std::int64_t>(view.shards));
    body.append(",\"events\":");
    put_i64(body, static_cast<std::int64_t>(view.events));
    body.append(",\"high_water_ms\":");
    put_i64(body, view.high_water.unix_millis());
    body.append("}\n");
    return Response{200, "application/json", std::move(body)};
  }
  if (path == "/metrics") {
    return Response{200, "text/plain; version=0.0.4",
                    metrics::global().render_text()};
  }
  if (path == "/links" || path.rfind("/links/", 0) == 0) {
    return handle_links(path, anonymize);
  }
  if (path == "/checkpoint") {
    return handle_checkpoint();
  }
  return Response{404, "application/json", error_body("no such resource")};
}

HttpServer::Response HttpServer::handle_links(std::string_view path,
                                              bool anonymize) {
  const QueryView view = assemble(snapshot_fn_(), census_->size());
  const Anonymizer* anon = anonymize ? &anonymizer() : nullptr;

  const auto put_link = [&](std::string& out, const CensusLink& link) {
    const LinkRow& row = view.rows[link.id.index()];
    out.append("{\"name\":");
    put_json_string(out, anon != nullptr ? anon->link_name(link.id)
                                         : link.name);
    out.append(",\"syslog\":");
    put_source_stats(out, row.syslog, options_.period_begin, view.high_water);
    out.append(",\"isis\":");
    put_source_stats(out, row.isis, options_.period_begin, view.high_water);
    out.append(",\"alerts\":{\"hard_down\":");
    put_i64(out, static_cast<std::int64_t>(row.alerts_hard));
    out.append(",\"flap_cusum\":");
    put_i64(out, static_cast<std::int64_t>(row.alerts_cusum));
    out.append(",\"template_drift\":");
    put_i64(out, static_cast<std::int64_t>(row.alerts_drift));
    out.append("}}");
  };

  if (path == "/links") {
    std::string body = "{\"high_water_ms\":";
    put_i64(body, view.high_water.unix_millis());
    body.append(",\"links\":[");
    bool first = true;
    for (const CensusLink& link : census_->links()) {
      if (!first) body.push_back(',');
      first = false;
      put_link(body, link);
    }
    body.append("]}\n");
    return Response{200, "application/json", std::move(body)};
  }

  const std::string_view name = path.substr(std::string_view("/links/").size());
  const auto id = census_->find_by_name(name);
  if (!id.has_value()) {
    return Response{404, "application/json", error_body("unknown link")};
  }
  std::string body;
  put_link(body, census_->link(*id));
  body.push_back('\n');
  return Response{200, "application/json", std::move(body)};
}

HttpServer::Response HttpServer::handle_checkpoint() {
  if (!checkpoint_fn_) {
    return Response{503, "application/json",
                    error_body("checkpointing is not configured (--state-dir)")};
  }
  if (Status s = checkpoint_fn_(); !s.ok()) {
    return Response{500, "application/json", error_body(s.error().to_string())};
  }
  return Response{200, "application/json", "{\"checkpoint\":\"ok\"}\n"};
}

const Anonymizer& HttpServer::anonymizer() {
  if (!anonymizer_.has_value()) {
    anonymizer_.emplace(*census_, options_.anonymize_seed);
  }
  return *anonymizer_;
}

void HttpServer::queue_response(Conn& c, const Response& r, bool keep_alive) {
  c.out.append("HTTP/1.1 ");
  put_i64(c.out, r.status);
  c.out.push_back(' ');
  c.out.append(status_text(r.status));
  c.out.append("\r\nContent-Type: ");
  c.out.append(r.content_type);
  c.out.append("\r\nContent-Length: ");
  put_i64(c.out, static_cast<std::int64_t>(r.body.size()));
  c.out.append("\r\nConnection: ");
  c.out.append(keep_alive ? "keep-alive" : "close");
  c.out.append("\r\n\r\n");
  c.out.append(r.body);
  if (!keep_alive) c.close_after = true;
}

bool HttpServer::flush_output(Conn& c) {
  while (c.out_pos < c.out.size()) {
    const ssize_t n = ::write(c.fd.get(), c.out.data() + c.out_pos,
                              c.out.size() - c.out_pos);
    if (n > 0) {
      c.out_pos += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      loop_.set_want_write(c.fd.get(), true);
      return true;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  c.out.clear();
  c.out_pos = 0;
  loop_.set_want_write(c.fd.get(), false);
  return !c.close_after;
}

void HttpServer::close_conn(int fd) {
  loop_.remove(fd);
  conns_.erase(fd);  // Fd destructor closes
}

}  // namespace netfail::svc
