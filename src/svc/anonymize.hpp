// svc::Anonymizer — seeded pseudonymization of the interned name universe.
//
// Sharing a capture (or a live API answer) must not leak router hostnames
// or interface names, but the *structure* — which links exist, how often
// each failed, every interval — must survive, or the shared data is
// useless for analysis. The sym interner reduces this to a symbol-table
// transform: every host and interface symbol in the census is remapped to
// a pseudonym derived from FNV-1a over (seed, original bytes), and link
// names are recomposed from the mapped endpoint symbols so the
// "hostA:ifA|hostB:ifB" shape is preserved.
//
// Guarantees:
//   - deterministic: same census + same seed => same pseudonyms, so two
//     exports of one capture correlate;
//   - injective within one anonymizer: hash collisions are resolved by
//     deterministic re-hashing, so distinct names never merge;
//   - non-reversible in practice: the pseudonym is a 48-bit keyed hash
//     rendering, and free-text fields (syslog `reason`) are not mapped at
//     all — consumers replace them with kRedactedText.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/ids.hpp"
#include "src/common/sym.hpp"
#include "src/config/census.hpp"

namespace netfail::svc {

/// Replacement for free-text fields that cannot be structurally mapped.
inline constexpr const char* kRedactedText = "[redacted]";

/// Default pseudonym seed ("netfail" as bytes); callers wanting unlinkable
/// exports pass their own secret seed.
inline constexpr std::uint64_t kDefaultAnonymizeSeed = 0x6c6961667465756eull;

class Anonymizer {
 public:
  /// Builds the full host/interface pseudonym table for `census` (iterated
  /// in link-id order, so the table is independent of intern order).
  Anonymizer(const LinkCensus& census, std::uint64_t seed);

  /// The pseudonym symbol for a mapped host/interface symbol; identity for
  /// symbols outside the census name universe.
  Symbol map_symbol(Symbol s) const { return table_.map(s); }
  std::string_view map_view(Symbol s) const { return table_.map(s).view(); }

  /// The anonymized canonical name of `link` ("hA:ifA|hB:ifB" shape).
  const std::string& link_name(LinkId link) const {
    return link_names_[link.index()];
  }

  const sym::RemapTable& table() const { return table_; }
  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
  sym::RemapTable table_;
  std::vector<std::string> link_names_;  // indexed by LinkId::index()
};

}  // namespace netfail::svc
