// svc snapshot — durable, versioned persistence of StreamEngine state.
//
// A snapshot file captures every analysis-bearing byte of one or more
// engine shards (per-link walker FSMs, reorder buffers, flap runs, the
// streaming extractor's LSP baselines, detector CUSUM/drift cells and the
// alert log) so that `netfail serve --state-dir` can stop at any point and
// a restarted process finishes the stream with a byte-identical digest.
//
// File layout (all integers little-endian, see binio.hpp):
//
//   magic[8]  "NFSNAPSH"
//   u32       format version (kSnapshotVersion)
//   u64       body length
//   body      (below)
//   u64       FNV-1a 64 checksum of the body bytes
//
// Body:
//
//   u64       census fingerprint (link count + names, id order)
//   u32       shard count
//   u32       symbol count, then per symbol: u32 len + bytes
//   per shard: u64 section length + engine section
//
// Symbols: interned ids are process-local (dense in first-intern order),
// so the file carries its own dense symbol table — ids are assigned in
// first-use order while encoding, and restore interns each string and
// remaps every symbol field through the resulting table. Unordered
// containers are serialized in sorted order, which makes the encoding a
// pure function of engine state: the restart differential test compares
// snapshot bytes as well as digests.
//
// Failure modes are total: a truncated file, a flipped bit, or a
// future-version header each fail load()/restore with a specific error
// (kTruncated / kChecksumMismatch / kUnsupported) and the target engine is
// never left partially restored — decode runs against a scratch copy that
// is committed only on success.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "src/common/result.hpp"
#include "src/common/sym.hpp"
#include "src/config/census.hpp"
#include "src/stream/engine.hpp"
#include "src/svc/binio.hpp"

namespace netfail::svc {

inline constexpr std::uint32_t kSnapshotVersion = 1;
inline constexpr char kSnapshotMagic[8] = {'N', 'F', 'S', 'N',
                                           'A', 'P', 'S', 'H'};
/// Conventional snapshot file name inside a --state-dir.
inline constexpr const char* kSnapshotFileName = "state.nfsnap";

/// Stable fingerprint of a census (FNV over link count and canonical link
/// names in id order). A snapshot only restores against the census it was
/// taken under — link ids are census-relative.
std::uint64_t census_fingerprint(const LinkCensus& census);

/// Writer-side symbol table: process symbol -> dense file-local id,
/// assigned in first-use order.
class SymbolSink {
 public:
  static constexpr std::uint32_t kInvalidLocal = 0xffffffffu;

  /// File-local id for `s` (assigning one on first use); kInvalidLocal for
  /// the invalid symbol.
  std::uint32_t local_id(Symbol s);

  /// Global symbol ids in file-local id order.
  const std::vector<std::uint32_t>& order() const { return order_; }

 private:
  std::vector<std::uint32_t> local_by_global_;  // kInvalidLocal = unassigned
  std::vector<std::uint32_t> order_;
};

/// Serializes one StreamEngine into / out of a snapshot section. The only
/// code granted friend access to engine internals; everything it touches
/// is cold path (snapshots are requested, never per-event).
class EngineCodec {
 public:
  static void encode(const stream::StreamEngine& engine, SymbolSink& syms,
                     ByteWriter& w);
  /// Decode a section into `engine`, remapping file-local symbol ids
  /// through `syms`. On error the engine is left untouched by the caller's
  /// commit protocol (decode targets a scratch copy; see restore_shard).
  static Status decode(ByteReader& r, const std::vector<Symbol>& syms,
                       stream::StreamEngine& engine);

 private:
  static void encode_tracker(const stream::LinkTracker& t, ByteWriter& w);
  static Status decode_tracker(ByteReader& r, stream::LinkTracker& t);
  static void encode_extractor(const isis::StreamingExtractor& x,
                               SymbolSink& syms, ByteWriter& w);
  static Status decode_extractor(ByteReader& r,
                                 const std::vector<Symbol>& syms,
                                 isis::StreamingExtractor& x);
  static void encode_detector(const detect::LinkDetector& d, SymbolSink& syms,
                              ByteWriter& w);
  static Status decode_detector(ByteReader& r, const std::vector<Symbol>& syms,
                                detect::LinkDetector& d);
};

/// Serialize `shards` (one engine per shard, shard-index order) and write
/// the file atomically: the bytes land in `path` + ".tmp" and are renamed
/// over `path` only after a successful flush, so a crash mid-write leaves
/// the previous snapshot intact.
Status save_snapshot(const std::string& path,
                     std::span<const stream::StreamEngine* const> shards,
                     const LinkCensus& census);

/// A parsed, checksum-verified snapshot file. Loading validates the frame
/// (magic, version, length, checksum) and the census fingerprint up front;
/// restore_shard then decodes one shard section into a live engine.
class LoadedSnapshot {
 public:
  static Result<LoadedSnapshot> load(const std::string& path,
                                     const LinkCensus& census);

  std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(sections_.size());
  }

  /// Replace `engine`'s analysis state with shard `shard`'s section. The
  /// engine must have been constructed against the same census and shard
  /// assignment (callbacks, options and census wiring are preserved). On
  /// any decode error the engine is unchanged.
  Status restore_shard(std::uint32_t shard,
                       stream::StreamEngine& engine) const;

 private:
  std::string body_;
  std::vector<Symbol> symbols_;  // file-local id -> process symbol
  std::vector<std::pair<std::size_t, std::size_t>> sections_;  // offset, len
};

}  // namespace netfail::svc
