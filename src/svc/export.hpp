// svc export — a deterministic, shareable text rendering of one capture's
// per-link analysis, optionally anonymized.
//
// The export carries the full interval/count structure the paper's
// analyses need — per-link failures (both observation sources), flap
// episodes, resolved syslog transitions and detector alerts — in a plain
// line-oriented format with millisecond timestamps. With
// `ExportOptions::anonymize` set, every hostname/interface is remapped
// through the seeded Anonymizer and free-text syslog reasons are replaced
// by kRedactedText; the anonymized export is structurally isomorphic to
// the plain one (same lines, same numbers, bijective names) and contains
// zero original name bytes — the round-trip test in tests/svc enforces
// both properties.
//
// Line grammar (one record per line, link-id order, "end" terminates each
// link block):
//
//   netfail-export v1
//   links <count>
//   link <name>
//   S <source> failures=<n> downtime_ms=<ms>
//   F <source> <begin_ms> <end_ms> <in_flap 0|1>
//   E <source> <begin_ms> <end_ms> <failure_count>
//   T <time_ms> <down|up> reporter=<host> reason=<text>
//   A <time_ms> <kind> <score>
//   end
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/analysis/failure.hpp"
#include "src/analysis/flaps.hpp"
#include "src/config/census.hpp"
#include "src/detect/alert.hpp"
#include "src/svc/anonymize.hpp"
#include "src/syslog/extract.hpp"

namespace netfail::svc {

struct ExportOptions {
  bool anonymize = false;
  std::uint64_t seed = kDefaultAnonymizeSeed;
};

struct ExportInputs {
  const LinkCensus* census = nullptr;
  /// Released failures from both reconstructions (any order; the renderer
  /// sorts per link by span then source).
  std::vector<analysis::Failure> failures;
  std::vector<analysis::FlapEpisode> syslog_episodes;
  std::vector<analysis::FlapEpisode> isis_episodes;
  /// Link-resolved syslog transitions in time order (reporter + free text).
  std::vector<syslog::SyslogTransition> transitions;
  std::vector<detect::LinkAlert> alerts;
};

std::string render_export(const ExportInputs& in, const ExportOptions& opts);

}  // namespace netfail::svc
