#include "src/stats/ks_test.hpp"

#include <algorithm>
#include <cmath>

namespace netfail::stats {

double ks_survival(double lambda) {
  // Q(lambda) = 2 * sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2).
  if (lambda <= 0) return 1.0;
  double sum = 0;
  double sign = 1;
  for (int k = 1; k <= 100; ++k) {
    const double term = std::exp(-2.0 * k * k * lambda * lambda);
    sum += sign * term;
    if (term < 1e-12) break;
    sign = -sign;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

KsResult ks_two_sample(std::vector<double> a, std::vector<double> b) {
  KsResult r;
  r.n1 = a.size();
  r.n2 = b.size();
  if (a.empty() || b.empty()) return r;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());

  // Walk both sorted samples, tracking the maximum ECDF gap.
  std::size_t i = 0, j = 0;
  double d = 0;
  while (i < a.size() && j < b.size()) {
    const double x = std::min(a[i], b[j]);
    while (i < a.size() && a[i] <= x) ++i;
    while (j < b.size() && b[j] <= x) ++j;
    const double f1 = static_cast<double>(i) / static_cast<double>(a.size());
    const double f2 = static_cast<double>(j) / static_cast<double>(b.size());
    d = std::max(d, std::abs(f1 - f2));
  }
  r.statistic = d;

  const double n1 = static_cast<double>(a.size());
  const double n2 = static_cast<double>(b.size());
  const double ne = n1 * n2 / (n1 + n2);
  // Asymptotic with the small-sample correction of Stephens (1970).
  const double lambda = (std::sqrt(ne) + 0.12 + 0.11 / std::sqrt(ne)) * d;
  r.p_value = ks_survival(lambda);
  return r;
}

}  // namespace netfail::stats
