#include "src/stats/ecdf.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/assert.hpp"
#include "src/common/strfmt.hpp"

namespace netfail::stats {

Ecdf::Ecdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::at(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double q) const {
  NETFAIL_ASSERT(!sorted_.empty(), "quantile of empty ECDF");
  NETFAIL_ASSERT(q >= 0.0 && q <= 1.0, "quantile out of [0,1]");
  if (q <= 0) return sorted_.front();
  const std::size_t k = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted_.size())));
  return sorted_[std::min(k == 0 ? 0 : k - 1, sorted_.size() - 1)];
}

std::vector<double> Ecdf::evaluate(const std::vector<double>& points) const {
  std::vector<double> out;
  out.reserve(points.size());
  for (double p : points) out.push_back(at(p));
  return out;
}

std::string Ecdf::ascii_plot(
    const std::vector<std::pair<std::string, const Ecdf*>>& curves,
    double x_min, double x_max, int width, int height,
    const std::string& x_label) {
  NETFAIL_ASSERT(x_min > 0 && x_max > x_min, "log plot needs 0 < x_min < x_max");
  NETFAIL_ASSERT(width > 10 && height > 4, "plot too small");
  const char* const kMarks = "*o+x#@";

  // grid[row][col]; row 0 is F = 1.0.
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  const double lx0 = std::log10(x_min);
  const double lx1 = std::log10(x_max);
  for (std::size_t c = 0; c < curves.size(); ++c) {
    const Ecdf* e = curves[c].second;
    if (e == nullptr || e->empty()) continue;
    const char mark = kMarks[c % 6];
    for (int col = 0; col < width; ++col) {
      const double x = std::pow(
          10.0, lx0 + (lx1 - lx0) * static_cast<double>(col) / (width - 1));
      const double f = e->at(x);
      int row = height - 1 - static_cast<int>(std::round(f * (height - 1)));
      row = std::clamp(row, 0, height - 1);
      char& cell =
          grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)];
      // Where curves coincide, show '=' instead of hiding one under the other.
      cell = (cell == ' ' || cell == mark) ? mark : '=';
    }
  }

  std::string out;
  for (int row = 0; row < height; ++row) {
    const double f =
        1.0 - static_cast<double>(row) / static_cast<double>(height - 1);
    out += strformat("%4.2f |", f);
    out += grid[static_cast<std::size_t>(row)];
    out += "\n";
  }
  out += "     +";
  out.append(static_cast<std::size_t>(width), '-');
  out += "\n";
  out += strformat("      %-10.3g", x_min);
  const std::string right = strformat("%.3g", x_max);
  const int pad = width - 10 - static_cast<int>(right.size());
  if (pad > 0) out.append(static_cast<std::size_t>(pad), ' ');
  out += right + "   (" + x_label + ", log scale)\n";
  for (std::size_t c = 0; c < curves.size(); ++c) {
    out += strformat("      %c : %s\n", kMarks[c % 6], curves[c].first.c_str());
  }
  if (curves.size() > 1) out += "      = : curves coincide\n";
  return out;
}

}  // namespace netfail::stats
