// Two-sample Kolmogorov-Smirnov test.
//
// The paper (sect. 4.2) uses the two-tailed KS statistic to decide which
// per-link metrics syslog reproduces faithfully: failures-per-link and link
// downtime pass, failure duration does not.
#pragma once

#include <vector>

namespace netfail::stats {

struct KsResult {
  double statistic = 0;  // sup |F1 - F2|
  double p_value = 1;    // asymptotic two-sided p-value
  std::size_t n1 = 0;
  std::size_t n2 = 0;

  /// Conventional alpha = 0.05 decision: true when the two samples are
  /// consistent with one distribution (fail to reject).
  bool consistent(double alpha = 0.05) const { return p_value > alpha; }
};

/// Two-sample two-tailed KS test. Inputs need not be sorted.
KsResult ks_two_sample(std::vector<double> a, std::vector<double> b);

/// Marsaglia-style asymptotic KS survival function Q(lambda); exposed for
/// tests against published values.
double ks_survival(double lambda);

}  // namespace netfail::stats
