// Empirical cumulative distribution functions (Figure 1 of the paper plots
// three of these for CPE links).
#pragma once

#include <string>
#include <vector>

namespace netfail::stats {

class Ecdf {
 public:
  Ecdf() = default;
  explicit Ecdf(std::vector<double> samples);

  std::size_t sample_count() const { return sorted_.size(); }
  bool empty() const { return sorted_.empty(); }

  /// F(x) = fraction of samples <= x.
  double at(double x) const;

  /// Inverse: smallest sample s with F(s) >= q.
  double quantile(double q) const;

  const std::vector<double>& sorted_samples() const { return sorted_; }

  /// Evaluate at `points` (ascending); used to print comparable curves.
  std::vector<double> evaluate(const std::vector<double>& points) const;

  /// Render an ASCII plot of one or more CDFs over a log-spaced x axis.
  /// Each curve is (label, ecdf). Used by the Figure 1 benchmark.
  static std::string ascii_plot(
      const std::vector<std::pair<std::string, const Ecdf*>>& curves,
      double x_min, double x_max, int width = 72, int height = 20,
      const std::string& x_label = "x");

 private:
  std::vector<double> sorted_;
};

}  // namespace netfail::stats
