// Descriptive statistics: the median / average / 95th-percentile triplets
// that fill the paper's Table 5.
#pragma once

#include <vector>

namespace netfail::stats {

struct Summary {
  std::size_t count = 0;
  double median = 0;
  double mean = 0;
  double p95 = 0;
  double min = 0;
  double max = 0;
  double stddev = 0;
};

/// Compute summary statistics. Empty input yields an all-zero summary.
Summary summarize(std::vector<double> values);

/// Linear-interpolation quantile (R-7, the common default), q in [0, 1].
/// `sorted` must be ascending and non-empty.
double quantile_sorted(const std::vector<double>& sorted, double q);

}  // namespace netfail::stats
