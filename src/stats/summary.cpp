#include "src/stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/assert.hpp"

namespace netfail::stats {

double quantile_sorted(const std::vector<double>& sorted, double q) {
  NETFAIL_ASSERT(!sorted.empty(), "quantile of empty data");
  NETFAIL_ASSERT(q >= 0.0 && q <= 1.0, "quantile out of [0,1]");
  if (sorted.size() == 1) return sorted[0];
  const double h = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(h);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = h - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

Summary summarize(std::vector<double> values) {
  Summary s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.count = values.size();
  s.min = values.front();
  s.max = values.back();
  s.median = quantile_sorted(values, 0.5);
  s.p95 = quantile_sorted(values, 0.95);
  double sum = 0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  double ss = 0;
  for (double v : values) ss += (v - s.mean) * (v - s.mean);
  s.stddev = values.size() > 1
                 ? std::sqrt(ss / static_cast<double>(values.size() - 1))
                 : 0.0;
  return s;
}

}  // namespace netfail::stats
