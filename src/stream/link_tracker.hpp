// stream::LinkTracker — the online equivalent of `analysis::reconstruct`.
//
// Ingests one source's (link, time, dir) transitions as they arrive and
// maintains, incrementally:
//   - the per-link reconstruction FSM (the exact `analysis::LinkWalker` the
//     batch path runs, so results are interval-identical);
//   - sliding-window flap detection (the 10-minute rule of paper sect. 4.1)
//     as a per-link running episode instead of a global regrouping pass;
//   - running availability/downtime counters per link.
//
// Memory is O(links + window), never O(events):
//   - transitions are buffered per link only until the reorder horizon
//     passes them (a watermark `horizon` behind the newest arrival), which
//     absorbs clock skew between message timestamps and arrival order —
//     the batch path gets the same effect by sorting the full trace;
//   - finished failures leave through the `on_failure` callback as soon as
//     retraction is impossible; only O(1) per link is held back;
//   - a fixed-capacity ring of recent failures supports rolling displays;
//   - optionally, `max_tracked_links` caps link state via idle-LRU eviction
//     (approximate mode for captures with unbounded link churn; off by
//     default and unused by the differential test).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "src/analysis/flaps.hpp"
#include "src/analysis/link_walker.hpp"
#include "src/analysis/reconstruct.hpp"

namespace netfail::svc {
class EngineCodec;  // durable snapshot serializer (src/svc)
}  // namespace netfail::svc

namespace netfail::stream {

struct TrackerOptions {
  /// Policy, merge window and study period for the FSM (must match the
  /// batch run to be comparable).
  analysis::ReconstructOptions reconstruct;
  analysis::FlapOptions flaps;
  /// Tag released failures with this source.
  analysis::Source source = analysis::Source::kIsis;
  /// Transitions are held back until the high-water arrival time is this
  /// far past their timestamp, then applied in (time, arrival) order. Must
  /// exceed the worst timestamp-vs-arrival skew of the source (router clock
  /// skew + delivery delay; seconds in practice) for exact batch
  /// equivalence.
  Duration reorder_horizon = Duration::seconds(60);
  /// 0 = unlimited. When set, the least-recently-active idle link may be
  /// evicted to admit a new one.
  std::size_t max_tracked_links = 0;
  /// Capacity of the recent-failures ring kept for rolling displays.
  std::size_t recent_ring_capacity = 32;
};

/// Per-link running counters; O(1) state each.
struct LinkRunningStats {
  LinkId link;
  std::size_t failures = 0;
  Duration downtime;
  LinkDirection state = LinkDirection::kUp;
  TimePoint last_transition;
  std::size_t flap_episodes = 0;
  std::size_t failures_in_episodes = 0;
};

struct TrackerCounters {
  std::uint64_t transitions_ingested = 0;
  std::uint64_t failures_released = 0;
  std::uint64_t flap_episodes = 0;
  std::uint64_t links_evicted = 0;
  std::uint64_t pending_peak = 0;  // high-water mark of buffered transitions
  // FSM counters (same meaning as analysis::Reconstruction).
  std::uint64_t double_downs = 0;
  std::uint64_t double_ups = 0;
  std::uint64_t merged_duplicates = 0;
  std::uint64_t unterminated = 0;
};

class LinkTracker {
 public:
  explicit LinkTracker(TrackerOptions options = {});

  // Copyable by design: a checkpoint is a copy of the tracker.

  /// Released failures, per link in chronological order. A failure is
  /// released only once no later event can retract it.
  std::function<void(const analysis::Failure&)> on_failure;
  /// Closed flap episodes (>= min_failures failures, gaps <= max_gap).
  std::function<void(const analysis::FlapEpisode&)> on_flap_episode;
  /// Ambiguous (double DOWN / double UP) segments, as the FSM sees them.
  std::function<void(const analysis::AmbiguousSegment&)> on_ambiguous;

  /// Feed one transition. Arrival order must be nondecreasing in
  /// `arrival`; the transition's own timestamp may lag or lead arrival by
  /// up to the reorder horizon.
  void ingest(const analysis::RawTransition& tr, TimePoint arrival);
  /// Convenience: arrival == transition time (sources whose timestamps are
  /// already monotone, like listener arrival times).
  void ingest(const analysis::RawTransition& tr) { ingest(tr, tr.time); }

  /// Flush every link's eligible buffered transitions (callers that pause
  /// between bursts use this to push the watermark through).
  void poll();

  /// End of stream: drain all buffers, close open episodes, count
  /// unterminated failures. Further ingest is a programming error.
  void finish();

  // -- snapshots --------------------------------------------------------------
  const TrackerCounters& counters() const { return counters_; }
  std::size_t tracked_links() const { return links_.size(); }
  std::size_t pending_transitions() const { return pending_total_; }
  /// Per-link running stats, link order.
  std::vector<LinkRunningStats> link_stats() const;
  /// The last few released failures, oldest first.
  std::vector<analysis::Failure> recent_failures() const;
  /// Total downtime released so far, all links.
  Duration total_downtime() const { return total_downtime_; }
  TimePoint high_water() const { return high_water_; }

 private:
  friend class netfail::svc::EngineCodec;

  struct PendingTransition {
    TimePoint time;
    std::uint64_t seq = 0;  // arrival order, for stable ties
    LinkDirection dir = LinkDirection::kDown;
    bool operator<(const PendingTransition& o) const {
      if (time != o.time) return time < o.time;
      return seq < o.seq;
    }
  };

  struct PerLink {
    analysis::LinkWalker::State walker;
    /// Min-heap on (time, seq); see flush_link.
    std::vector<PendingTransition> pending;
    /// Failures emitted by the walker but not yet released. Only the
    /// newest failure of a link can ever be retracted (kDrop double-UP),
    /// so at most one element is held back here.
    std::vector<analysis::Failure> held;
    LinkRunningStats stats;
    // Current flap run (sliding-window episode detection).
    std::size_t run_count = 0;
    TimePoint run_start;
    TimePoint run_last_end;
    TimePoint last_active;  // newest arrival touching this link
  };

  PerLink& link_state(LinkId link, TimePoint arrival);
  void flush_link(LinkId link, PerLink& pl, TimePoint up_to);
  void apply(LinkId link, PerLink& pl, const PendingTransition& tr);
  void release(LinkId link, PerLink& pl, std::size_t keep);
  void close_run(LinkId link, PerLink& pl);
  void maybe_evict(TimePoint arrival);

  TrackerOptions options_;
  std::map<LinkId, PerLink> links_;
  TrackerCounters counters_;
  /// Walker counter sink; its failure/ambiguous vectors stay empty (the
  /// walker writes those through per-link sinks).
  analysis::Reconstruction walker_counters_;
  std::vector<analysis::AmbiguousSegment> ambiguous_scratch_;
  std::deque<analysis::Failure> recent_;
  Duration total_downtime_;
  TimePoint high_water_;
  bool has_high_water_ = false;
  std::uint64_t next_seq_ = 0;
  std::size_t pending_total_ = 0;
  bool finished_ = false;
};

}  // namespace netfail::stream
