// stream::StreamEngine — single-pass online failure analysis over an
// interleaved syslog + IS-IS event stream.
//
// The engine is the streaming counterpart of `analysis::run_pipeline`'s
// extract+reconstruct stages: it parses each syslog line and diffs each LSP
// as it arrives (sharing the exact extractor code with the batch path) and
// feeds the resulting transitions into two LinkTrackers — one per
// observation source, mirroring the paper's two reconstructions. All state
// is O(links + reorder window); the full event trace is never buffered.
//
// `Checkpoint` captures the engine mid-stream (extractor LSP baselines,
// per-link FSM states, reorder buffers, counters) so analysis can be
// paused and resumed — e.g. across capture-file rotations — without
// replaying history. Resume requires the same census (the checkpoint
// stores per-census link ids).
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "src/config/census.hpp"
#include "src/detect/detector.hpp"
#include "src/isis/extract.hpp"
#include "src/stream/event_mux.hpp"
#include "src/stream/link_tracker.hpp"
#include "src/stream/sharded.hpp"
#include "src/syslog/extract.hpp"

namespace netfail::svc {
// Serializes engine state to the durable snapshot format (src/svc); the
// only non-member granted access to engine internals.
class EngineCodec;
}  // namespace netfail::svc

namespace netfail::stream {

struct EngineOptions {
  /// Tracker configuration, shared by both source trackers (the engine
  /// overrides `source` per tracker).
  TrackerOptions tracker;
  /// Online anomaly detection stage (off by default; a disabled detector
  /// costs one branch per extracted transition).
  detect::DetectorOptions detect;
  /// Sharded operation (see sharded.hpp): when `partition` is set, this
  /// engine is shard `shard` of partition->shard_count() and analyzes only
  /// the links it owns. Syslog lines are *routed* (each line reaches
  /// exactly one shard, so extraction stats sum to the serial run), while
  /// LSP streams are *broadcast* (the streaming extractor's pair state
  /// needs both endpoints of every adjacency); the per-transition ownership
  /// filter below keeps tracker and detector state disjoint across shards.
  /// The map must outlive the engine and every checkpoint taken from it.
  const ShardMap* partition = nullptr;
  std::uint32_t shard = 0;
};

class StreamEngine;

/// A resumable snapshot of a StreamEngine. Opaque value: copy it, ship it,
/// resume from it via StreamEngine::resume(). The census is referenced,
/// not captured; resuming against a different census is undefined.
///
/// Detector state rides in the deep copy like every other engine member:
/// the per-link CUSUM statistics, the open drift window, and the full
/// alert log are all captured, so a resumed engine emits exactly the
/// alerts an uninterrupted run would have emitted from this point on.
class Checkpoint {
 public:
  TimePoint high_water() const { return high_water_; }
  std::uint64_t events_ingested() const { return events_; }
  /// Alerts the detector stage had emitted by snapshot time (0 with
  /// detection disabled).
  std::uint64_t alerts_emitted() const { return alerts_; }
  /// The snapshotted engine itself (trackers, stats, detector) — read-only
  /// access for the sharded merge, which folds per-shard checkpoints into
  /// one serial-identical result.
  const StreamEngine& state() const;

 private:
  friend class StreamEngine;
  std::shared_ptr<const StreamEngine> state_;  // deep copy at snapshot time
  TimePoint high_water_;
  std::uint64_t events_ = 0;
  std::uint64_t alerts_ = 0;
};

class StreamEngine {
 public:
  explicit StreamEngine(const LinkCensus& census, EngineOptions options = {});

  /// Feed the next event in merged arrival order (see EventMux).
  void feed(const StreamEvent& ev);
  /// Feed a refilled batch (see EventMux::next_batch) in order. Equivalent
  /// to feeding each event individually; pairs with batch refill so the
  /// pull loop amortizes its per-event dispatch.
  void feed_batch(std::span<const StreamEvent> batch);
  void feed_syslog(const syslog::ReceivedLine& rec);
  void feed_lsp(const isis::LspRecord& rec);

  /// End of stream: drain both trackers. Idempotent.
  void finish();

  /// Pause: snapshot the complete engine state.
  Checkpoint checkpoint() const;
  /// Resume a snapshot (callbacks on the trackers are preserved).
  static StreamEngine resume(const Checkpoint& cp);

  // -- the two online reconstructions ------------------------------------------
  LinkTracker& isis_tracker() { return isis_tracker_; }
  LinkTracker& syslog_tracker() { return syslog_tracker_; }
  const LinkTracker& isis_tracker() const { return isis_tracker_; }
  const LinkTracker& syslog_tracker() const { return syslog_tracker_; }

  // -- the online anomaly detection stage ---------------------------------------
  detect::LinkDetector& detector() { return detector_; }
  const detect::LinkDetector& detector() const { return detector_; }

  const syslog::SyslogExtractionStats& syslog_stats() const {
    return syslog_stats_;
  }
  const isis::ExtractionStats& isis_stats() const {
    return isis_extractor_.stats();
  }

  std::uint64_t events_ingested() const { return events_; }
  std::uint64_t syslog_events() const { return syslog_events_; }
  std::uint64_t lsp_events() const { return lsp_events_; }
  TimePoint high_water() const { return high_water_; }

  /// True when this engine analyzes `link`. Always true unpartitioned;
  /// invalid links carry no per-link state, so every shard "owns" them.
  bool owns_link(LinkId link) const {
    return options_.partition == nullptr || !link.valid() ||
           options_.partition->owns(options_.shard, link);
  }

 private:
  friend class netfail::svc::EngineCodec;

  const LinkCensus* census_;
  EngineOptions options_;
  isis::StreamingExtractor isis_extractor_;
  syslog::SyslogExtractionStats syslog_stats_;
  LinkTracker isis_tracker_;
  LinkTracker syslog_tracker_;
  detect::LinkDetector detector_;
  std::vector<isis::IsisTransition> scratch_;
  std::uint64_t events_ = 0;
  std::uint64_t syslog_events_ = 0;
  std::uint64_t lsp_events_ = 0;
  TimePoint high_water_;
  bool finished_ = false;
};

}  // namespace netfail::stream
