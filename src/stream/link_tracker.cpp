#include "src/stream/link_tracker.hpp"

#include <algorithm>
#include <limits>

#include "src/common/assert.hpp"
#include "src/common/metrics.hpp"

namespace netfail::stream {
namespace {

struct TrackerMetrics {
  metrics::Counter& transitions =
      metrics::global().counter("stream.tracker.transitions");
  metrics::Counter& failures =
      metrics::global().counter("stream.tracker.failures_released");
  metrics::Counter& episodes =
      metrics::global().counter("stream.tracker.flap_episodes");
  metrics::Counter& evicted =
      metrics::global().counter("stream.tracker.links_evicted");
};

// Namespace-scope so the per-transition hot path carries no static-init guard.
TrackerMetrics g_tracker_metrics;

TrackerMetrics& tracker_metrics() { return g_tracker_metrics; }

constexpr TimePoint time_max() {
  return TimePoint::from_unix_millis(std::numeric_limits<std::int64_t>::max());
}

}  // namespace

LinkTracker::LinkTracker(TrackerOptions options)
    : options_(std::move(options)) {}

LinkTracker::PerLink& LinkTracker::link_state(LinkId link, TimePoint arrival) {
  auto it = links_.find(link);
  if (it == links_.end()) {
    maybe_evict(arrival);
    it = links_.emplace(link, PerLink{}).first;
    it->second.stats.link = link;
  }
  it->second.last_active = arrival;
  return it->second;
}

void LinkTracker::maybe_evict(TimePoint arrival) {
  if (options_.max_tracked_links == 0 ||
      links_.size() < options_.max_tracked_links) {
    return;
  }
  // Evict the least-recently-active link that holds no unprocessed or
  // unreleased state; if every link is mid-failure or mid-buffer, exceed the
  // cap rather than corrupt results.
  auto victim = links_.end();
  for (auto it = links_.begin(); it != links_.end(); ++it) {
    const PerLink& pl = it->second;
    if (pl.walker.state != LinkDirection::kUp || !pl.pending.empty() ||
        !pl.held.empty() || pl.run_count != 0) {
      continue;
    }
    if (pl.last_active >= arrival) continue;
    if (victim == links_.end() ||
        pl.last_active < victim->second.last_active) {
      victim = it;
    }
  }
  if (victim != links_.end()) {
    links_.erase(victim);
    ++counters_.links_evicted;
    tracker_metrics().evicted.inc();
  }
}

void LinkTracker::ingest(const analysis::RawTransition& tr, TimePoint arrival) {
  NETFAIL_ASSERT(!finished_, "LinkTracker::ingest after finish()");
  ++counters_.transitions_ingested;
  tracker_metrics().transitions.inc();
  if (!has_high_water_ || arrival > high_water_) {
    high_water_ = arrival;
    has_high_water_ = true;
  }

  PerLink& pl = link_state(tr.link, arrival);
  pl.pending.push_back(PendingTransition{tr.time, next_seq_++, tr.dir});
  std::push_heap(pl.pending.begin(), pl.pending.end(),
                 [](const PendingTransition& a, const PendingTransition& b) {
                   return b < a;  // min-heap on (time, seq)
                 });
  ++pending_total_;
  counters_.pending_peak = std::max<std::uint64_t>(
      counters_.pending_peak, pending_total_);

  flush_link(tr.link, pl, high_water_ - options_.reorder_horizon);
}

void LinkTracker::flush_link(LinkId link, PerLink& pl, TimePoint up_to) {
  const auto greater = [](const PendingTransition& a,
                          const PendingTransition& b) { return b < a; };
  while (!pl.pending.empty() && pl.pending.front().time <= up_to) {
    std::pop_heap(pl.pending.begin(), pl.pending.end(), greater);
    const PendingTransition tr = pl.pending.back();
    pl.pending.pop_back();
    --pending_total_;
    apply(link, pl, tr);
  }
}

void LinkTracker::apply(LinkId link, PerLink& pl,
                        const PendingTransition& tr) {
  analysis::LinkWalker walker(link, options_.reconstruct, walker_counters_,
                              pl.held, ambiguous_scratch_, pl.walker);
  walker.feed(tr.time, tr.dir);
  pl.stats.state = pl.walker.state;
  pl.stats.last_transition = tr.time;

  for (const analysis::AmbiguousSegment& seg : ambiguous_scratch_) {
    if (on_ambiguous) on_ambiguous(seg);
  }
  ambiguous_scratch_.clear();

  // Only the newest failure can be retracted (kDrop double-UP); everything
  // older is final and leaves the tracker now.
  const std::size_t keep =
      options_.reconstruct.policy == analysis::AmbiguityPolicy::kDrop ? 1 : 0;
  release(link, pl, keep);

  counters_.double_downs = walker_counters_.double_downs;
  counters_.double_ups = walker_counters_.double_ups;
  counters_.merged_duplicates = walker_counters_.merged_duplicates;
  counters_.unterminated = walker_counters_.unterminated;
}

void LinkTracker::release(LinkId link, PerLink& pl, std::size_t keep) {
  while (pl.held.size() > keep) {
    analysis::Failure f = pl.held.front();
    pl.held.erase(pl.held.begin());
    f.source = options_.source;

    ++pl.stats.failures;
    pl.stats.downtime += f.duration();
    total_downtime_ += f.duration();
    ++counters_.failures_released;
    tracker_metrics().failures.inc();

    // Sliding-window flap detection: extend the current run while gaps stay
    // within max_gap (released failures arrive begin-ordered per link).
    if (pl.run_count > 0 &&
        f.span.begin - pl.run_last_end <= options_.flaps.max_gap) {
      ++pl.run_count;
      pl.run_last_end = f.span.end;
    } else {
      close_run(link, pl);
      pl.run_count = 1;
      pl.run_start = f.span.begin;
      pl.run_last_end = f.span.end;
    }

    recent_.push_back(f);
    while (recent_.size() > options_.recent_ring_capacity) {
      recent_.pop_front();
    }
    if (on_failure) on_failure(f);
  }
}

void LinkTracker::close_run(LinkId link, PerLink& pl) {
  if (pl.run_count >= options_.flaps.min_failures) {
    analysis::FlapEpisode ep;
    ep.link = link;
    ep.failure_count = pl.run_count;
    ep.span = TimeRange{pl.run_start, pl.run_last_end};
    ++pl.stats.flap_episodes;
    pl.stats.failures_in_episodes += pl.run_count;
    ++counters_.flap_episodes;
    tracker_metrics().episodes.inc();
    if (on_flap_episode) on_flap_episode(ep);
  }
  pl.run_count = 0;
}

void LinkTracker::poll() {
  if (!has_high_water_) return;
  const TimePoint up_to = high_water_ - options_.reorder_horizon;
  for (auto& [link, pl] : links_) flush_link(link, pl, up_to);
}

void LinkTracker::finish() {
  if (finished_) return;
  for (auto& [link, pl] : links_) {
    flush_link(link, pl, time_max());
    analysis::LinkWalker walker(link, options_.reconstruct, walker_counters_,
                                pl.held, ambiguous_scratch_, pl.walker);
    walker.finish();
    release(link, pl, 0);
    close_run(link, pl);
  }
  counters_.double_downs = walker_counters_.double_downs;
  counters_.double_ups = walker_counters_.double_ups;
  counters_.merged_duplicates = walker_counters_.merged_duplicates;
  counters_.unterminated = walker_counters_.unterminated;
  finished_ = true;
}

std::vector<LinkRunningStats> LinkTracker::link_stats() const {
  std::vector<LinkRunningStats> out;
  out.reserve(links_.size());
  for (const auto& [link, pl] : links_) out.push_back(pl.stats);
  return out;
}

std::vector<analysis::Failure> LinkTracker::recent_failures() const {
  return {recent_.begin(), recent_.end()};
}

}  // namespace netfail::stream
