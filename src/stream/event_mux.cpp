#include "src/stream/event_mux.hpp"

#include <memory>

#include "src/common/metrics.hpp"

namespace netfail::stream {

EventMux::EventMux(SyslogSource syslog_source, LspSource lsp_source)
    : syslog_source_(std::move(syslog_source)),
      lsp_source_(std::move(lsp_source)) {
  refill_syslog();
  refill_lsp();
}

void EventMux::refill_syslog() {
  static metrics::Counter& dropped =
      metrics::global().counter("stream.mux.out_of_order_dropped");
  while (syslog_source_) {
    pending_line_ = syslog_source_();
    if (!pending_line_) break;
    if (have_last_syslog_ && pending_line_->received_at < last_syslog_) {
      ++stats_.out_of_order_dropped;
      dropped.inc();
      continue;  // regression within the source: drop and pull again
    }
    last_syslog_ = pending_line_->received_at;
    have_last_syslog_ = true;
    return;
  }
  pending_line_.reset();
}

void EventMux::refill_lsp() {
  static metrics::Counter& dropped =
      metrics::global().counter("stream.mux.out_of_order_dropped");
  while (lsp_source_) {
    pending_lsp_ = lsp_source_();
    if (!pending_lsp_) break;
    if (have_last_lsp_ && pending_lsp_->received_at < last_lsp_) {
      ++stats_.out_of_order_dropped;
      dropped.inc();
      continue;
    }
    last_lsp_ = pending_lsp_->received_at;
    have_last_lsp_ = true;
    return;
  }
  pending_lsp_.reset();
}

std::optional<StreamEvent> EventMux::next() {
  const bool have_line = pending_line_.has_value();
  const bool have_lsp = pending_lsp_.has_value();
  if (!have_line && !have_lsp) return std::nullopt;

  // Two-way merge; ties go to syslog for determinism.
  const bool take_syslog =
      have_line &&
      (!have_lsp || pending_line_->received_at <= pending_lsp_->received_at);

  StreamEvent ev;
  if (take_syslog) {
    ev.time = pending_line_->received_at;
    ev.payload = std::move(*pending_line_);
    ++stats_.syslog_events;
    refill_syslog();
  } else {
    ev.time = pending_lsp_->received_at;
    ev.payload = std::move(*pending_lsp_);
    ++stats_.lsp_events;
    refill_lsp();
  }
  return ev;
}

EventMux EventMux::over_vectors(const std::vector<syslog::ReceivedLine>& lines,
                                const std::vector<isis::LspRecord>& records) {
  auto line_cursor = std::make_shared<std::size_t>(0);
  auto lsp_cursor = std::make_shared<std::size_t>(0);
  return EventMux(
      [&lines, line_cursor]() -> std::optional<syslog::ReceivedLine> {
        if (*line_cursor >= lines.size()) return std::nullopt;
        return lines[(*line_cursor)++];
      },
      [&records, lsp_cursor]() -> std::optional<isis::LspRecord> {
        if (*lsp_cursor >= records.size()) return std::nullopt;
        return records[(*lsp_cursor)++];
      });
}

}  // namespace netfail::stream
