#include "src/stream/event_mux.hpp"

#include "src/common/metrics.hpp"

namespace netfail::stream {
namespace {

// Namespace-scope so the refill paths carry no static-init guard.
metrics::Counter& g_dropped =
    metrics::global().counter("stream.mux.out_of_order_dropped");

}  // namespace

EventMux::EventMux(SyslogSource syslog_source, LspSource lsp_source)
    : syslog_source_(std::move(syslog_source)),
      lsp_source_(std::move(lsp_source)) {}

void EventMux::refill_syslog() {
  while (syslog_source_) {
    pending_line_ = syslog_source_();
    if (pending_line_ == nullptr) return;
    if (have_last_syslog_ && pending_line_->received_at < last_syslog_) {
      ++stats_.out_of_order_dropped;
      g_dropped.inc();
      continue;  // regression within the source: drop and pull again
    }
    last_syslog_ = pending_line_->received_at;
    have_last_syslog_ = true;
    return;
  }
  pending_line_ = nullptr;
}

void EventMux::refill_lsp() {
  while (lsp_source_) {
    pending_lsp_ = lsp_source_();
    if (pending_lsp_ == nullptr) return;
    if (have_last_lsp_ && pending_lsp_->received_at < last_lsp_) {
      ++stats_.out_of_order_dropped;
      g_dropped.inc();
      continue;
    }
    last_lsp_ = pending_lsp_->received_at;
    have_last_lsp_ = true;
    return;
  }
  pending_lsp_ = nullptr;
}

std::optional<StreamEvent> EventMux::next() {
  // Deferred refills: the slot consumed by the previous next() is re-pulled
  // only now, so the event we handed out stayed valid in between.
  if (need_refill_syslog_) {
    refill_syslog();
    need_refill_syslog_ = false;
  }
  if (need_refill_lsp_) {
    refill_lsp();
    need_refill_lsp_ = false;
  }

  const bool have_line = pending_line_ != nullptr;
  const bool have_lsp = pending_lsp_ != nullptr;
  if (!have_line && !have_lsp) return std::nullopt;

  // Two-way merge; ties go to syslog for determinism.
  const bool take_syslog =
      have_line &&
      (!have_lsp || pending_line_->received_at <= pending_lsp_->received_at);

  StreamEvent ev;
  if (take_syslog) {
    ev.time = pending_line_->received_at;
    ev.line_ptr = pending_line_;
    ++stats_.syslog_events;
    need_refill_syslog_ = true;
  } else {
    ev.time = pending_lsp_->received_at;
    ev.lsp_ptr = pending_lsp_;
    ++stats_.lsp_events;
    need_refill_lsp_ = true;
  }
  return ev;
}

std::size_t EventMux::next_batch(std::vector<StreamEvent>& out,
                                 std::size_t max) {
  out.clear();
  while (out.size() < max) {
    std::optional<StreamEvent> ev = next();
    if (!ev) break;
    out.push_back(*ev);
  }
  return out.size();
}

EventMux EventMux::over_vectors(const std::vector<syslog::ReceivedLine>& lines,
                                const std::vector<isis::LspRecord>& records) {
  std::size_t line_cursor = 0;
  std::size_t lsp_cursor = 0;
  return EventMux(
      [&lines, line_cursor]() mutable -> const syslog::ReceivedLine* {
        if (line_cursor >= lines.size()) return nullptr;
        return &lines[line_cursor++];
      },
      [&records, lsp_cursor]() mutable -> const isis::LspRecord* {
        if (lsp_cursor >= records.size()) return nullptr;
        return &records[lsp_cursor++];
      });
}

}  // namespace netfail::stream
