#include "src/stream/sharded.hpp"

#include "src/common/assert.hpp"
#include "src/syslog/message.hpp"

namespace netfail::stream {

ShardMap::ShardMap(const LinkCensus& census, std::uint32_t shard_count)
    : census_(&census), shard_count_(shard_count) {
  NETFAIL_ASSERT(shard_count >= 1, "ShardMap needs at least one shard");
  by_link_.resize(census.size());
  for (const CensusLink& link : census.links()) {
    by_link_[link.id.index()] = shard_of_name(link.name);
  }
}

std::uint32_t ShardMap::shard_of_line(std::string_view line) const {
  if (shard_count_ == 1) return 0;
  return shard_of_parsed(syslog::parse_message(line), line);
}

std::uint32_t ShardMap::shard_of_parsed(const Result<syslog::Message>& parsed,
                                        std::string_view line) const {
  if (shard_count_ == 1) return 0;
  if (!parsed) {
    // Unparsable / untracked shape: no per-link state downstream, any
    // deterministic spread keeps the summed stats exact.
    return static_cast<std::uint32_t>(stable_hash64(line) % shard_count_);
  }
  if (const std::optional<LinkId> link =
          census_->find_by_interface(parsed->reporter, parsed->interface)) {
    return shard_of(*link);
  }
  // Parsed but unresolved against the census (the extractor will count it
  // as unresolved_links on whichever shard gets it).
  return shard_of_name(parsed->reporter.view());
}

}  // namespace netfail::stream
