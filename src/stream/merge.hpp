// stream::merge — fold N per-shard analysis results into one result that is
// byte-identical to the serial single-shard run.
//
// The partition invariant (sharded.hpp) makes this merge exact rather than
// approximate: every link's state lives on exactly one shard, so
//
//   - released failures / ambiguous segments / flap episodes concatenate
//     and stable-sort by link — the same link-order merge discipline the
//     parallel batch pipeline uses for its per-link fan-out. Stability
//     preserves each link's release order, which equals the serial run's
//     per-link order because one shard saw that link's full subsequence;
//   - tracker and extraction counters sum (pending_peak is the one
//     exception: a high-water mark of buffered transitions is not
//     shard-count-invariant, so the merge takes the max and the digest
//     excludes it);
//   - IS-IS extraction stats and LSP event counts come from shard 0 and
//     are *verified* equal on every shard (the LSP stream is broadcast, so
//     any divergence is a partitioning bug, not data);
//   - detect alerts concatenate and stable-sort by link: per-link alert
//     order is reproduced exactly (window rolls happen before each
//     observation is processed, so drift alerts interleave with CUSUM and
//     hard-down alerts identically on the owning shard and serially).
//
// `render_digest` lays the merged result out as one deterministic string;
// the sharded differential tests compare digests across shard counts
// {1, 2, 4} byte for byte.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "src/stream/engine.hpp"

namespace netfail::stream {

/// Everything one shard's run produced: the released analysis objects (in
/// that shard's release order) plus the post-finish engine. The engine
/// pointer must stay valid for the merge call.
struct ShardRun {
  std::vector<analysis::Failure> isis_failures;
  std::vector<analysis::Failure> syslog_failures;
  std::vector<analysis::AmbiguousSegment> isis_ambiguous;
  std::vector<analysis::AmbiguousSegment> syslog_ambiguous;
  std::vector<analysis::FlapEpisode> isis_episodes;
  std::vector<analysis::FlapEpisode> syslog_episodes;
  std::vector<detect::LinkAlert> alerts;
  const StreamEngine* engine = nullptr;
};

/// One observation source's merged view.
struct MergedSide {
  std::vector<analysis::Failure> failures;          // canonical link order
  std::vector<analysis::AmbiguousSegment> ambiguous;
  std::vector<analysis::FlapEpisode> episodes;
  TrackerCounters counters;  // summed; pending_peak = max across shards
  Duration total_downtime;
};

struct MergedRun {
  MergedSide isis;
  MergedSide syslog;
  syslog::SyslogExtractionStats syslog_stats;  // summed (lines are routed)
  isis::ExtractionStats isis_stats;            // shard 0 (broadcast)
  std::vector<detect::LinkAlert> alerts;       // canonical link order
  std::uint64_t syslog_events = 0;             // summed
  std::uint64_t lsp_events = 0;                // shard 0 (broadcast)
  std::uint64_t events = 0;                    // syslog_events + lsp_events
  std::uint64_t alerts_emitted = 0;            // summed
  TimePoint high_water;                        // max
};

/// Merge per-shard runs (any count >= 1; a single serial run merges to its
/// own canonical form). Asserts the broadcast invariants (identical IS-IS
/// extraction stats and LSP event counts on every shard).
MergedRun merge_shard_runs(std::span<const ShardRun> shards);

/// Deterministic one-string rendering of a merged run: every failure,
/// ambiguous segment, episode, alert, counter and stat, link-named via the
/// census. Two runs are byte-identical iff their digests match.
std::string render_digest(const MergedRun& run, const LinkCensus& census);

}  // namespace netfail::stream
