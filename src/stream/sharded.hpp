// stream::ShardMap — the stable partition function behind sharded ingest.
//
// Scaling the gateway to N consumer shards only preserves the serial
// analysis result if every event concerning one link lands on exactly one
// shard (the trackers, the detector's CUSUM/drift cells and the FSMs are
// all strictly per-link state). The shard of a link is derived from the
// census link's canonical *name* ("hostA:ifA|hostB:ifB"), not from interned
// symbol ids or std::hash: symbol ids depend on intern order and
// std::hash is implementation-defined, so neither survives a process
// restart or a library upgrade. FNV-1a over the name bytes is fixed by
// this header forever — the sharded differential tests pin golden values.
//
// Syslog lines are routed *before* extraction: the dispatcher parses the
// line (the same zero-copy parse_message the extractor uses) and resolves
// (reporter, interface) through the census, so both endpoints' reports of
// one link reach the same shard. Lines that do not resolve to a census
// link carry no per-link analysis state; they are spread deterministically
// (reporter-name hash, or raw-byte hash for unparsable lines) so that the
// per-shard extraction stats still sum to the serial run's stats.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/common/result.hpp"
#include "src/config/census.hpp"
#include "src/syslog/message.hpp"

namespace netfail::stream {

/// FNV-1a, 64-bit, over raw bytes. Process- and platform-stable by
/// construction (the constants are the algorithm); never replace with
/// std::hash, whose value is unspecified and varies across
/// implementations.
constexpr std::uint64_t kFnv64OffsetBasis = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnv64Prime = 0x100000001b3ull;

constexpr std::uint64_t stable_hash64(std::string_view bytes) {
  std::uint64_t h = kFnv64OffsetBasis;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kFnv64Prime;
  }
  return h;
}

/// The partition function: census link -> shard, plus the raw-line router
/// the gateway's IO threads use. Immutable after construction; safe to
/// share across threads by const reference.
class ShardMap {
 public:
  /// `shard_count` >= 1. The census must outlive the map (links are
  /// re-resolved when routing raw lines).
  ShardMap(const LinkCensus& census, std::uint32_t shard_count);

  std::uint32_t shard_count() const { return shard_count_; }

  /// Shard owning `link`. Precomputed; O(1).
  std::uint32_t shard_of(LinkId link) const {
    return by_link_[link.index()];
  }

  /// Shard for an arbitrary stable name (used for links at construction
  /// and for unresolved-reporter fallback at dispatch).
  std::uint32_t shard_of_name(std::string_view name) const {
    return static_cast<std::uint32_t>(stable_hash64(name) % shard_count_);
  }

  /// Route one raw syslog line: resolve its link through the census and
  /// return the owning shard; deterministic fallbacks for lines that do
  /// not resolve (see file comment). Total: every line gets a shard.
  std::uint32_t shard_of_line(std::string_view line) const;

  /// Same routing over an already-parsed line (`line` is still needed for
  /// the unparsable-fallback hash). The gateway's IO threads parse each
  /// datagram exactly once and reuse the result here and for arrival
  /// stamping. Must agree with shard_of_line for every input.
  std::uint32_t shard_of_parsed(const Result<syslog::Message>& parsed,
                                std::string_view line) const;

  /// True when `shard` owns `link` — the engine-side partition filter.
  bool owns(std::uint32_t shard, LinkId link) const {
    return by_link_[link.index()] == shard;
  }

 private:
  const LinkCensus* census_;
  std::uint32_t shard_count_;
  std::vector<std::uint32_t> by_link_;  // indexed by LinkId::index()
};

}  // namespace netfail::stream
