// stream::EventMux — merge the two observation sources into one
// timestamp-ordered event stream.
//
// The paper's artifacts are live collectors: a central syslog host and a
// passive PyRT-style IS-IS listener, each producing an arrival-ordered
// stream. The mux performs a two-way merge on arrival time, checking each
// source's monotonicity along the way: an event that time-travels backwards
// within its own source is dropped and counted (a real tail of a syslog
// file or a corrupt capture can contain such records; the online FSMs
// require per-source order). Ties go to syslog so runs are deterministic.
//
// Sources are pull callbacks, so the mux works equally over in-memory
// vectors (see `over_vectors`), file readers, or live sockets, and holds
// O(1) state: one pending event per source.
//
// Events are *borrowed*, not owned: a StreamEvent points into the storage
// the source returned (zero copies on the per-event path). For a callback
// source that reuses a buffer, the event is valid until the next call to
// next(); for `over_vectors` it stays valid as long as the vectors do.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "src/common/time.hpp"
#include "src/isis/listener.hpp"
#include "src/syslog/collector.hpp"

namespace netfail::stream {

enum class EventKind { kSyslogLine, kLsp };

/// A non-owning view of one merged event (see lifetime note above).
/// Exactly one of the two payload pointers is set.
struct StreamEvent {
  TimePoint time;  // arrival timestamp at the event's collector
  const syslog::ReceivedLine* line_ptr = nullptr;
  const isis::LspRecord* lsp_ptr = nullptr;

  EventKind kind() const {
    return line_ptr != nullptr ? EventKind::kSyslogLine : EventKind::kLsp;
  }
  const syslog::ReceivedLine& line() const { return *line_ptr; }
  const isis::LspRecord& lsp() const { return *lsp_ptr; }
};

struct MuxStats {
  std::uint64_t syslog_events = 0;
  std::uint64_t lsp_events = 0;
  std::uint64_t out_of_order_dropped = 0;
};

class EventMux {
 public:
  /// Pull callbacks: return the next record, or nullptr when exhausted.
  /// The pointee must stay valid until the callback is invoked again (a
  /// reused buffer is fine; the mux never holds more than the lookahead).
  using SyslogSource = std::function<const syslog::ReceivedLine*()>;
  using LspSource = std::function<const isis::LspRecord*()>;

  /// Either source may be null (single-source streaming).
  EventMux(SyslogSource syslog_source, LspSource lsp_source);

  /// The next event in merged arrival order, or nullopt when both sources
  /// are exhausted.
  std::optional<StreamEvent> next();

  /// Batch refill: clear `out` and fill it with up to `max` events in
  /// merged arrival order; returns the count (0 = exhausted). ONLY safe
  /// when both sources return pointers into stable storage (`over_vectors`,
  /// a fully buffered capture): a batch holds many borrowed events at once,
  /// and a source that reuses its buffer invalidates every earlier event on
  /// each pull. For such sources, stick to next().
  std::size_t next_batch(std::vector<StreamEvent>& out, std::size_t max);

  const MuxStats& stats() const { return stats_; }

  /// Convenience: mux over in-memory captures (e.g. a loaded bundle). The
  /// vectors must outlive the mux and any events it returned.
  static EventMux over_vectors(const std::vector<syslog::ReceivedLine>& lines,
                               const std::vector<isis::LspRecord>& records);

 private:
  void refill_syslog();
  void refill_lsp();

  SyslogSource syslog_source_;
  LspSource lsp_source_;
  // Lookahead, borrowed from the sources. Refills are deferred to the next
  // next() call so a handed-out event is never invalidated by its own pull.
  const syslog::ReceivedLine* pending_line_ = nullptr;
  const isis::LspRecord* pending_lsp_ = nullptr;
  bool need_refill_syslog_ = true;
  bool need_refill_lsp_ = true;
  TimePoint last_syslog_;
  TimePoint last_lsp_;
  bool have_last_syslog_ = false;
  bool have_last_lsp_ = false;
  MuxStats stats_;
};

}  // namespace netfail::stream
