#include "src/stream/merge.hpp"

#include <algorithm>
#include <charconv>

#include "src/common/assert.hpp"
#include "src/syslog/message.hpp"

namespace netfail::stream {
namespace {

template <typename T>
void append_all(std::vector<T>& out, const std::vector<T>& in) {
  out.insert(out.end(), in.begin(), in.end());
}

/// Canonical link order with per-shard (== per-link) order preserved.
template <typename T>
void sort_by_link(std::vector<T>& v) {
  std::stable_sort(v.begin(), v.end(),
                   [](const T& a, const T& b) { return a.link < b.link; });
}

void accumulate(TrackerCounters& out, const TrackerCounters& in) {
  out.transitions_ingested += in.transitions_ingested;
  out.failures_released += in.failures_released;
  out.flap_episodes += in.flap_episodes;
  out.links_evicted += in.links_evicted;
  out.pending_peak = std::max(out.pending_peak, in.pending_peak);
  out.double_downs += in.double_downs;
  out.double_ups += in.double_ups;
  out.merged_duplicates += in.merged_duplicates;
  out.unterminated += in.unterminated;
}

bool same_isis_stats(const isis::ExtractionStats& a,
                     const isis::ExtractionStats& b) {
  return a.lsps_processed == b.lsps_processed &&
         a.checksum_failures == b.checksum_failures &&
         a.parse_failures == b.parse_failures && a.stale_lsps == b.stale_lsps &&
         a.purges == b.purges && a.unknown_host_pairs == b.unknown_host_pairs &&
         a.unknown_prefixes == b.unknown_prefixes &&
         a.multilink_transitions == b.multilink_transitions;
}

void put(std::string& out, std::string_view s) { out.append(s); }
void put_u64(std::string& out, std::uint64_t v) {
  out.append(std::to_string(v));
}
void put_i64(std::string& out, std::int64_t v) {
  out.append(std::to_string(v));
}
void put_f(std::string& out, double v) {
  // Shortest round-trippable form via to_chars: locale-independent (the
  // digest is compared across processes and pinned in golden files, and
  // std::to_string's decimal separator follows the C locale) and lossless
  // (fixed 6 decimals would collapse nearby alert scores).
  char buf[32];
  const std::to_chars_result r = std::to_chars(buf, buf + sizeof(buf), v);
  NETFAIL_ASSERT(r.ec == std::errc(), "double render overflow");
  out.append(buf, r.ptr);
}
void put_time(std::string& out, TimePoint t) {
  put_i64(out, t.unix_millis());
}
void put_link(std::string& out, LinkId link, const LinkCensus& census) {
  out.append(census.link(link).name);
}

void render_side(std::string& out, std::string_view label,
                 const MergedSide& side, const LinkCensus& census) {
  put(out, "[");
  put(out, label);
  put(out, "]\n");
  for (const analysis::Failure& f : side.failures) {
    put(out, "F ");
    put_link(out, f.link, census);
    put(out, " ");
    put_time(out, f.span.begin);
    put(out, " ");
    put_time(out, f.span.end);
    put(out, f.in_flap_episode ? " flap\n" : " -\n");
  }
  for (const analysis::AmbiguousSegment& a : side.ambiguous) {
    put(out, "A ");
    put_link(out, a.link, census);
    put(out, a.repeated_dir == LinkDirection::kDown ? " down " : " up ");
    put_time(out, a.first_message);
    put(out, " ");
    put_time(out, a.second_message);
    put(out, "\n");
  }
  for (const analysis::FlapEpisode& e : side.episodes) {
    put(out, "E ");
    put_link(out, e.link, census);
    put(out, " ");
    put_time(out, e.span.begin);
    put(out, " ");
    put_time(out, e.span.end);
    put(out, " ");
    put_u64(out, e.failure_count);
    put(out, "\n");
  }
  const TrackerCounters& c = side.counters;
  put(out, "counters ingested=");
  put_u64(out, c.transitions_ingested);
  put(out, " released=");
  put_u64(out, c.failures_released);
  put(out, " episodes=");
  put_u64(out, c.flap_episodes);
  put(out, " evicted=");
  put_u64(out, c.links_evicted);
  put(out, " ddown=");
  put_u64(out, c.double_downs);
  put(out, " dup=");
  put_u64(out, c.double_ups);
  put(out, " merged=");
  put_u64(out, c.merged_duplicates);
  put(out, " unterminated=");
  put_u64(out, c.unterminated);
  put(out, " downtime_ms=");
  put_i64(out, side.total_downtime.total_millis());
  put(out, "\n");
}

}  // namespace

MergedRun merge_shard_runs(std::span<const ShardRun> shards) {
  NETFAIL_ASSERT(!shards.empty(), "merge of zero shards");
  MergedRun out;
  const StreamEngine* first = shards[0].engine;
  NETFAIL_ASSERT(first != nullptr, "ShardRun without an engine");
  out.isis_stats = first->isis_stats();
  out.lsp_events = first->lsp_events();

  for (const ShardRun& s : shards) {
    NETFAIL_ASSERT(s.engine != nullptr, "ShardRun without an engine");
    append_all(out.isis.failures, s.isis_failures);
    append_all(out.isis.ambiguous, s.isis_ambiguous);
    append_all(out.isis.episodes, s.isis_episodes);
    append_all(out.syslog.failures, s.syslog_failures);
    append_all(out.syslog.ambiguous, s.syslog_ambiguous);
    append_all(out.syslog.episodes, s.syslog_episodes);
    append_all(out.alerts, s.alerts);

    accumulate(out.isis.counters, s.engine->isis_tracker().counters());
    accumulate(out.syslog.counters, s.engine->syslog_tracker().counters());
    out.isis.total_downtime += s.engine->isis_tracker().total_downtime();
    out.syslog.total_downtime += s.engine->syslog_tracker().total_downtime();

    const syslog::SyslogExtractionStats& ss = s.engine->syslog_stats();
    out.syslog_stats.lines_seen += ss.lines_seen;
    out.syslog_stats.parse_failures += ss.parse_failures;
    out.syslog_stats.irrelevant_lines += ss.irrelevant_lines;
    out.syslog_stats.unresolved_links += ss.unresolved_links;

    out.syslog_events += s.engine->syslog_events();
    out.alerts_emitted += s.engine->detector().alerts_emitted();
    if (s.engine->high_water() > out.high_water) {
      out.high_water = s.engine->high_water();
    }

    // Broadcast invariants: every shard ran the full LSP stream through
    // its own extractor; divergence means the partition leaked.
    NETFAIL_ASSERT(s.engine->lsp_events() == out.lsp_events,
                   "sharded LSP broadcast diverged (event count)");
    NETFAIL_ASSERT(same_isis_stats(s.engine->isis_stats(), out.isis_stats),
                   "sharded LSP broadcast diverged (extraction stats)");
  }
  out.events = out.syslog_events + out.lsp_events;

  sort_by_link(out.isis.failures);
  sort_by_link(out.isis.ambiguous);
  sort_by_link(out.isis.episodes);
  sort_by_link(out.syslog.failures);
  sort_by_link(out.syslog.ambiguous);
  sort_by_link(out.syslog.episodes);
  sort_by_link(out.alerts);
  return out;
}

std::string render_digest(const MergedRun& run, const LinkCensus& census) {
  std::string out;
  out.reserve(256 + 64 * (run.isis.failures.size() +
                          run.syslog.failures.size() + run.alerts.size()));
  put(out, "events=");
  put_u64(out, run.events);
  put(out, " syslog=");
  put_u64(out, run.syslog_events);
  put(out, " lsp=");
  put_u64(out, run.lsp_events);
  put(out, " high_water=");
  put_time(out, run.high_water);
  put(out, "\n");
  put(out, "syslog_stats seen=");
  put_u64(out, run.syslog_stats.lines_seen);
  put(out, " parse_failures=");
  put_u64(out, run.syslog_stats.parse_failures);
  put(out, " irrelevant=");
  put_u64(out, run.syslog_stats.irrelevant_lines);
  put(out, " unresolved=");
  put_u64(out, run.syslog_stats.unresolved_links);
  put(out, "\n");
  put(out, "isis_stats lsps=");
  put_u64(out, run.isis_stats.lsps_processed);
  put(out, " checksum=");
  put_u64(out, run.isis_stats.checksum_failures);
  put(out, " parse=");
  put_u64(out, run.isis_stats.parse_failures);
  put(out, " stale=");
  put_u64(out, run.isis_stats.stale_lsps);
  put(out, " purges=");
  put_u64(out, run.isis_stats.purges);
  put(out, " unknown_pairs=");
  put_u64(out, run.isis_stats.unknown_host_pairs);
  put(out, " unknown_prefixes=");
  put_u64(out, run.isis_stats.unknown_prefixes);
  put(out, " multilink=");
  put_u64(out, run.isis_stats.multilink_transitions);
  put(out, "\n");

  render_side(out, "isis", run.isis, census);
  render_side(out, "syslog", run.syslog, census);

  put(out, "[alerts] emitted=");
  put_u64(out, run.alerts_emitted);
  put(out, "\n");
  for (const detect::LinkAlert& a : run.alerts) {
    put(out, "D ");
    put_link(out, a.link, census);
    put(out, " ");
    put_time(out, a.time);
    put(out, " ");
    put(out, detect::alert_kind_name(a.kind));
    put(out, " ");
    put_f(out, a.score);
    put(out, " ");
    put(out, a.template_id.valid() ? a.template_id.view() : "-");
    put(out, "\n");
  }
  return out;
}

}  // namespace netfail::stream
