#include "src/stream/engine.hpp"

#include "src/common/assert.hpp"
#include "src/common/metrics.hpp"

namespace netfail::stream {
namespace {

struct EngineMetrics {
  metrics::Counter& events = metrics::global().counter("stream.engine.events");
  metrics::Counter& syslog_events =
      metrics::global().counter("stream.engine.syslog_events");
  metrics::Counter& lsp_events =
      metrics::global().counter("stream.engine.lsp_events");
};

// Namespace-scope so the per-event hot path carries no static-init guard.
EngineMetrics g_engine_metrics;

EngineMetrics& engine_metrics() { return g_engine_metrics; }

TrackerOptions tracker_options_for(const EngineOptions& options,
                                   analysis::Source source) {
  TrackerOptions t = options.tracker;
  t.source = source;
  return t;
}

}  // namespace

StreamEngine::StreamEngine(const LinkCensus& census, EngineOptions options)
    : census_(&census),
      options_(options),
      isis_extractor_(&census),
      isis_tracker_(tracker_options_for(options, analysis::Source::kIsis)),
      syslog_tracker_(tracker_options_for(options, analysis::Source::kSyslog)),
      detector_(options.detect) {}

void StreamEngine::feed(const StreamEvent& ev) {
  if (ev.kind() == EventKind::kSyslogLine) {
    feed_syslog(ev.line());
  } else {
    feed_lsp(ev.lsp());
  }
}

void StreamEngine::feed_batch(std::span<const StreamEvent> batch) {
  for (const StreamEvent& ev : batch) feed(ev);
}

void StreamEngine::feed_syslog(const syslog::ReceivedLine& rec) {
  ++events_;
  ++syslog_events_;
  engine_metrics().events.inc();
  engine_metrics().syslog_events.inc();
  if (rec.received_at > high_water_) high_water_ = rec.received_at;

  const std::optional<syslog::SyslogTransition> tr =
      syslog::extract_line(rec, *census_, syslog_stats_);
  if (!tr) return;
  // Partitioned: a routed line should always resolve to an owned link (the
  // dispatcher and the extractor share the census lookup); the filter is
  // the correctness guard that keeps per-link state disjoint regardless of
  // how the line reached us.
  if (!owns_link(tr->link)) return;
  // The detector sees every extracted transition, media class included —
  // the template-frequency counters cover all tracked message shapes.
  if (detector_.enabled()) detector_.observe_syslog(*tr, rec.received_at);
  // Same filter as reconstruct_from_syslog: adjacency-class messages on
  // census-resolved links.
  if (tr->cls != syslog::MessageClass::kIsisAdjacency) return;
  if (!tr->link.valid()) return;
  syslog_tracker_.ingest(
      analysis::RawTransition{tr->link, tr->time, tr->dir}, rec.received_at);
}

void StreamEngine::feed_lsp(const isis::LspRecord& rec) {
  ++events_;
  ++lsp_events_;
  engine_metrics().events.inc();
  engine_metrics().lsp_events.inc();
  if (rec.received_at > high_water_) high_water_ = rec.received_at;

  scratch_.clear();
  isis_extractor_.feed(rec, scratch_);
  for (const isis::IsisTransition& tr : scratch_) {
    // Same filter as reconstruct_from_isis: link-resolved IS-reachability
    // transitions only (multi-link pairs excluded).
    if (tr.field != isis::ReachabilityField::kIsReach) continue;
    if (!tr.link.valid() || tr.multilink) continue;
    // Partitioned: LSPs are broadcast (every shard runs the full extractor
    // for pair state), but only the owning shard analyzes the transition.
    if (!owns_link(tr.link)) continue;
    if (detector_.enabled()) detector_.observe_isis(tr.link, tr.time, tr.dir);
    isis_tracker_.ingest(analysis::RawTransition{tr.link, tr.time, tr.dir},
                         rec.received_at);
  }
}

void StreamEngine::finish() {
  if (finished_) return;
  isis_tracker_.finish();
  syslog_tracker_.finish();
  detector_.finish();
  finished_ = true;
}

Checkpoint StreamEngine::checkpoint() const {
  Checkpoint cp;
  cp.state_ = std::make_shared<const StreamEngine>(*this);
  cp.high_water_ = high_water_;
  cp.events_ = events_;
  cp.alerts_ = detector_.alerts_emitted();
  return cp;
}

StreamEngine StreamEngine::resume(const Checkpoint& cp) {
  NETFAIL_ASSERT(cp.state_ != nullptr, "resume from an empty Checkpoint");
  return *cp.state_;
}

const StreamEngine& Checkpoint::state() const {
  NETFAIL_ASSERT(state_ != nullptr, "state() of an empty Checkpoint");
  return *state_;
}

}  // namespace netfail::stream
