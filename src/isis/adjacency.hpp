// Point-to-point adjacency state machine (ISO 10589 + RFC 5303 three-way
// handshake).
//
// One AdjacencyFsm instance models one router's view of one point-to-point
// circuit. The simulator's fast path derives adjacency timings analytically
// (driving per-hello events for 13 months would be billions of events), but
// this FSM is the semantic reference: integration tests replay hello
// sequences through two coupled FSMs and check the analytic shortcut agrees.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/common/time.hpp"
#include "src/isis/pdu.hpp"

namespace netfail::isis {

enum class AdjacencyState { kDown, kInitializing, kUp };

inline const char* adjacency_state_name(AdjacencyState s) {
  switch (s) {
    case AdjacencyState::kDown: return "Down";
    case AdjacencyState::kInitializing: return "Initializing";
    case AdjacencyState::kUp: return "Up";
  }
  return "?";
}

/// Why the FSM changed state; mirrors the reason strings Cisco routers put
/// into their %CLNS-5-ADJCHANGE messages.
enum class AdjacencyChangeReason {
  kNew,            // three-way handshake completed
  kHoldTimeExpired,
  kInterfaceDown,
  kNeighborRestarted,
};

const char* adjacency_change_reason_text(AdjacencyChangeReason r);

struct AdjacencyChange {
  TimePoint time;
  AdjacencyState state;
  AdjacencyChangeReason reason;
};

class AdjacencyFsm {
 public:
  struct Params {
    Duration hello_interval = Duration::seconds(10);
    /// holdingTime advertised in hellos: hello_interval * multiplier.
    int hold_multiplier = 3;
  };

  explicit AdjacencyFsm(OsiSystemId self) : AdjacencyFsm(self, Params{}) {}
  AdjacencyFsm(OsiSystemId self, Params params);

  // -- inputs -----------------------------------------------------------------
  /// Physical carrier came up; hellos start flowing.
  void media_up(TimePoint t);
  /// Physical carrier lost; adjacency (if any) drops immediately.
  void media_down(TimePoint t);
  /// A hello arrived from the far end.
  void receive_hello(TimePoint t, const PointToPointHello& hello);
  /// Advance the clock (fires the hold timer if it has expired).
  void advance_to(TimePoint t);

  // -- outputs ----------------------------------------------------------------
  AdjacencyState state() const { return state_; }
  /// The hello this side would transmit at time t.
  PointToPointHello make_hello(TimePoint t) const;
  /// Time at which the hold timer will fire unless a hello arrives.
  std::optional<TimePoint> hold_deadline() const { return hold_deadline_; }
  /// Drain accumulated state-change events.
  std::vector<AdjacencyChange> take_changes();

  Duration holding_time() const {
    return params_.hello_interval * params_.hold_multiplier;
  }

 private:
  void set_state(TimePoint t, AdjacencyState s, AdjacencyChangeReason reason);

  OsiSystemId self_;
  Params params_;
  AdjacencyState state_ = AdjacencyState::kDown;
  bool media_is_up_ = false;
  std::optional<OsiSystemId> neighbor_;
  std::optional<TimePoint> hold_deadline_;
  std::vector<AdjacencyChange> changes_;
};

}  // namespace netfail::isis
