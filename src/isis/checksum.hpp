// Fletcher checksum as used by IS-IS LSPs (ISO 10589 sect. 7.3.11, the
// ISO 8473 checksum algorithm).
//
// The LSP checksum covers the PDU from the LSP ID field to the end; the
// checksum field itself is computed so the whole covered region sums to
// zero. The listener verifies it on every received LSP and discards corrupt
// packets, as the real PyRT-based listener did.
#pragma once

#include <cstdint>
#include <span>

namespace netfail {

/// Compute the 16-bit Fletcher checksum to store at `checksum_offset`
/// (relative to `data.begin()`); the checksum bytes inside `data` are
/// treated as zero during computation.
std::uint16_t fletcher_checksum(std::span<const std::uint8_t> data,
                                std::size_t checksum_offset);

/// True when `data`, containing a checksum at `checksum_offset`, verifies.
bool fletcher_verify(std::span<const std::uint8_t> data,
                     std::size_t checksum_offset);

}  // namespace netfail
