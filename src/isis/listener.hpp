// The passive IS-IS listener (our analogue of the PyRT-based listener the
// paper deployed at CENIC).
//
// It receives raw LSP bytes flooded through the network and records them
// with arrival timestamps. Like the real listener it can be offline for
// maintenance windows — LSPs flooded during a gap are simply never recorded,
// which is why the paper's sanitization step removes failures spanning
// listener downtime (sect. 4.2).
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/interval_set.hpp"
#include "src/common/time.hpp"

namespace netfail::isis {

struct LspRecord {
  TimePoint received_at;
  std::vector<std::uint8_t> bytes;
};

class Listener {
 public:
  /// Declare the maintenance windows during which the listener is down.
  void set_offline_windows(IntervalSet windows) { offline_ = std::move(windows); }
  const IntervalSet& offline_windows() const { return offline_; }
  bool is_offline(TimePoint t) const { return offline_.contains(t); }

  /// Deliver a flooded LSP; dropped silently when the listener is offline.
  void deliver(TimePoint t, std::vector<std::uint8_t> bytes);

  const std::vector<LspRecord>& records() const { return records_; }
  std::size_t delivered_count() const { return records_.size(); }
  std::size_t dropped_count() const { return dropped_; }

  /// Account for periodic refresh floods that are counted analytically
  /// rather than materialized (see DESIGN.md): they carry no state change
  /// but contribute to the "IS-IS updates" total of Table 1.
  void add_virtual_refreshes(std::uint64_t n) { virtual_refreshes_ += n; }
  std::uint64_t total_updates() const {
    return records_.size() + virtual_refreshes_;
  }

 private:
  IntervalSet offline_;
  std::vector<LspRecord> records_;
  std::size_t dropped_ = 0;
  std::uint64_t virtual_refreshes_ = 0;
};

}  // namespace netfail::isis
