#include "src/isis/lsp_builder.hpp"

#include "src/common/assert.hpp"

namespace netfail::isis {

LspOriginator::LspOriginator(OsiSystemId self, std::string hostname)
    : self_(self), hostname_(std::move(hostname)) {}

void LspOriginator::adjacency_up(OsiSystemId neighbor, std::uint32_t metric) {
  ++adjacencies_[{neighbor, metric}];
}

void LspOriginator::adjacency_down(OsiSystemId neighbor, std::uint32_t metric) {
  auto it = adjacencies_.find({neighbor, metric});
  NETFAIL_ASSERT(it != adjacencies_.end() && it->second > 0,
                 "adjacency_down without matching adjacency_up");
  if (--it->second == 0) adjacencies_.erase(it);
}

void LspOriginator::prefix_up(Ipv4Prefix prefix, std::uint32_t metric) {
  prefixes_[prefix] = metric;
}

void LspOriginator::prefix_down(Ipv4Prefix prefix) {
  prefixes_.erase(prefix);
}

Lsp LspOriginator::build() {
  Lsp lsp;
  lsp.source = self_;
  lsp.sequence = ++sequence_;
  lsp.hostname = hostname_;
  for (const auto& [key, count] : adjacencies_) {
    for (int i = 0; i < count; ++i) {
      lsp.is_reach.push_back(IsReachEntry{key.first, 0, key.second});
    }
  }
  for (const auto& [prefix, metric] : prefixes_) {
    lsp.ip_reach.push_back(IpReachEntry{metric, prefix});
  }
  return lsp;
}

std::optional<TimePoint> LspThrottle::on_change(TimePoint t) {
  if (pending_ && *pending_ >= t) return std::nullopt;  // already covered
  TimePoint candidate = t;
  if (last_generated_ && *last_generated_ + min_interval_ > candidate) {
    candidate = *last_generated_ + min_interval_;
  }
  pending_ = candidate;
  return candidate;
}

void LspThrottle::on_generated(TimePoint t) {
  last_generated_ = t;
  pending_.reset();
}

}  // namespace netfail::isis
