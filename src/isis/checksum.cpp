#include "src/isis/checksum.hpp"

namespace netfail {
namespace {

/// Fletcher accumulators over `data`, treating the two checksum bytes at
/// `checksum_offset` as zero. Returns (c0, c1) each in [0, 254].
void accumulate(std::span<const std::uint8_t> data, std::size_t checksum_offset,
                bool zero_checksum_field, std::uint32_t& c0, std::uint32_t& c1) {
  c0 = 0;
  c1 = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    std::uint8_t b = data[i];
    if (zero_checksum_field && (i == checksum_offset || i == checksum_offset + 1)) {
      b = 0;
    }
    c0 = (c0 + b) % 255;
    c1 = (c1 + c0) % 255;
  }
}

std::uint32_t pos_mod_255(std::int64_t v) {
  std::int64_t m = v % 255;
  if (m < 0) m += 255;
  return static_cast<std::uint32_t>(m);
}

}  // namespace

std::uint16_t fletcher_checksum(std::span<const std::uint8_t> data,
                                std::size_t checksum_offset) {
  std::uint32_t c0 = 0, c1 = 0;
  accumulate(data, checksum_offset, /*zero_checksum_field=*/true, c0, c1);

  const std::int64_t len = static_cast<std::int64_t>(data.size());
  const std::int64_t p = static_cast<std::int64_t>(checksum_offset) + 1;  // 1-based
  // Solve for the two checksum octets x, y such that both accumulators are
  // zero mod 255 after insertion (derivation in ISO 8473 / RFC 1008).
  std::uint32_t x = pos_mod_255((len - p) * c0 - c1);
  std::uint32_t y = pos_mod_255(c1 - (len - p + 1) * c0);
  // 0x0000 is reserved for "checksum not computed"; 0 and 255 are congruent
  // mod 255, so substituting 255 preserves validity.
  if (x == 0) x = 255;
  if (y == 0) y = 255;
  return static_cast<std::uint16_t>((x << 8) | y);
}

bool fletcher_verify(std::span<const std::uint8_t> data,
                     std::size_t checksum_offset) {
  if (checksum_offset + 2 > data.size()) return false;
  const std::uint16_t stored = static_cast<std::uint16_t>(
      (std::uint16_t{data[checksum_offset]} << 8) | data[checksum_offset + 1]);
  if (stored == 0) return false;  // "not computed" is a failure for LSPs we emit
  std::uint32_t c0 = 0, c1 = 0;
  accumulate(data, checksum_offset, /*zero_checksum_field=*/false, c0, c1);
  return c0 == 0 && c1 == 0;
}

}  // namespace netfail
