#include "src/isis/checksum.hpp"

namespace netfail {
namespace {

// Fletcher accumulation with deferred modulo. The textbook loop reduces both
// accumulators mod 255 after every byte — two integer divisions per input
// byte, which dominated LSP decode. Instead the accumulators run in 64 bits
// and are reduced once per block: after n bytes starting from c0 < 255,
// c1 < 255, the worst case is c0 <= 254 + 255n and
// c1 <= 254 + n*254 + 255*n(n+1)/2, so any block well under 2^27 bytes is
// overflow-safe. LSPs are a few hundred bytes; a whole PDU is one block.
constexpr std::size_t kBlock = std::size_t{1} << 22;

/// Add `data` into the running accumulators. Chunks of eight bytes keep the
/// loop-carried dependency to three adds per chunk: the byte sums S and the
/// position-weighted sums W have no cross-chunk dependency, so the compiler
/// is free to vectorize them.
void accumulate_span(const std::uint8_t* p, std::size_t n, std::uint64_t& c0,
                     std::uint64_t& c1) {
  while (n > 0) {
    const std::size_t block = n < kBlock ? n : kBlock;
    std::size_t i = 0;
    for (; i + 8 <= block; i += 8) {
      // For bytes b0..b7 appended to (c0, c1):
      //   c1' = c1 + 8*c0 + 8*b0 + 7*b1 + ... + 1*b7
      //   c0' = c0 + b0 + ... + b7
      const std::uint8_t* b = p + i;
      const std::uint64_t s = std::uint64_t{b[0]} + b[1] + b[2] + b[3] +
                              std::uint64_t{b[4]} + b[5] + b[6] + b[7];
      const std::uint64_t w = 8 * std::uint64_t{b[0]} + 7 * std::uint64_t{b[1]} +
                              6 * std::uint64_t{b[2]} + 5 * std::uint64_t{b[3]} +
                              4 * std::uint64_t{b[4]} + 3 * std::uint64_t{b[5]} +
                              2 * std::uint64_t{b[6]} + std::uint64_t{b[7]};
      c1 += 8 * c0 + w;
      c0 += s;
    }
    for (; i < block; ++i) {
      c0 += p[i];
      c1 += c0;
    }
    c0 %= 255;
    c1 %= 255;
    p += block;
    n -= block;
  }
}

/// Fletcher accumulators over `data`, treating the two checksum bytes at
/// `checksum_offset` as zero when requested. Returns (c0, c1) in [0, 254].
void accumulate(std::span<const std::uint8_t> data, std::size_t checksum_offset,
                bool zero_checksum_field, std::uint32_t& c0_out,
                std::uint32_t& c1_out) {
  std::uint64_t c0 = 0, c1 = 0;
  if (!zero_checksum_field || checksum_offset + 2 > data.size()) {
    accumulate_span(data.data(), data.size(), c0, c1);
  } else {
    // Split around the zeroed checksum field: a zero byte leaves c0 alone
    // and adds c0 into c1, so the two skipped bytes contribute 2*c0.
    accumulate_span(data.data(), checksum_offset, c0, c1);
    c1 += 2 * c0;
    accumulate_span(data.data() + checksum_offset + 2,
                    data.size() - checksum_offset - 2, c0, c1);
  }
  c0_out = static_cast<std::uint32_t>(c0 % 255);
  c1_out = static_cast<std::uint32_t>(c1 % 255);
}

std::uint32_t pos_mod_255(std::int64_t v) {
  std::int64_t m = v % 255;
  if (m < 0) m += 255;
  return static_cast<std::uint32_t>(m);
}

}  // namespace

std::uint16_t fletcher_checksum(std::span<const std::uint8_t> data,
                                std::size_t checksum_offset) {
  std::uint32_t c0 = 0, c1 = 0;
  accumulate(data, checksum_offset, /*zero_checksum_field=*/true, c0, c1);

  const std::int64_t len = static_cast<std::int64_t>(data.size());
  const std::int64_t p = static_cast<std::int64_t>(checksum_offset) + 1;  // 1-based
  // Solve for the two checksum octets x, y such that both accumulators are
  // zero mod 255 after insertion (derivation in ISO 8473 / RFC 1008).
  std::uint32_t x = pos_mod_255((len - p) * c0 - c1);
  std::uint32_t y = pos_mod_255(c1 - (len - p + 1) * c0);
  // 0x0000 is reserved for "checksum not computed"; 0 and 255 are congruent
  // mod 255, so substituting 255 preserves validity.
  if (x == 0) x = 255;
  if (y == 0) y = 255;
  return static_cast<std::uint16_t>((x << 8) | y);
}

bool fletcher_verify(std::span<const std::uint8_t> data,
                     std::size_t checksum_offset) {
  if (checksum_offset + 2 > data.size()) return false;
  const std::uint16_t stored = static_cast<std::uint16_t>(
      (std::uint16_t{data[checksum_offset]} << 8) | data[checksum_offset + 1]);
  if (stored == 0) return false;  // "not computed" is a failure for LSPs we emit
  std::uint32_t c0 = 0, c1 = 0;
  accumulate(data, checksum_offset, /*zero_checksum_field=*/false, c0, c1);
  return c0 == 0 && c1 == 0;
}

}  // namespace netfail
