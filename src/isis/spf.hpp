// Shortest-path-first computation over a link-state database snapshot
// (ISO 10589 Annex C / classic Dijkstra).
//
// Routing is why the paper can call IS-IS "ground truth": if the protocol
// declares a link down, traffic genuinely stops using it. This module makes
// that operational meaning computable — which nodes and prefixes a router
// can reach, and at what metric — directly from the same LSPs the listener
// records. An adjacency counts only when *both* ends advertise it (the
// protocol's two-way check), matching the extractor's semantics.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "src/isis/lsdb.hpp"

namespace netfail::isis {

struct SpfNode {
  OsiSystemId system;
  std::uint32_t distance = 0;
  /// First hop from the root toward this node (invalid for the root itself).
  std::optional<OsiSystemId> first_hop;
};

struct SpfResult {
  /// Reached nodes, keyed by system id.
  std::map<OsiSystemId, SpfNode> nodes;
  /// Best metric toward every reachable IP prefix.
  std::map<Ipv4Prefix, std::uint32_t> prefixes;

  bool reaches(const OsiSystemId& system) const {
    return nodes.contains(system);
  }
  bool reaches(const Ipv4Prefix& prefix) const {
    return prefixes.contains(prefix);
  }
};

/// Run SPF from `root` over the database. Nodes connected only by
/// one-directional advertisements are unreachable (two-way check).
SpfResult shortest_paths(const LinkStateDatabase& db, const OsiSystemId& root);

/// Convenience: systems unreachable from `root` (present in the database but
/// not reached) — the protocol-level notion of a partition.
std::vector<OsiSystemId> unreachable_systems(const LinkStateDatabase& db,
                                             const OsiSystemId& root);

}  // namespace netfail::isis
