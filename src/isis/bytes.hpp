// Big-endian byte buffer reader/writer for protocol encoding.
//
// IS-IS PDUs (ISO 10589) are network-byte-order TLV soup; these two small
// classes keep the codec code free of manual shifting and bounds bugs. The
// reader is non-owning (works on a span of received bytes) and returns
// Result so truncated packets surface as errors, not UB.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/common/result.hpp"

namespace netfail {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void u24(std::uint32_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 16));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void bytes(std::span<const std::uint8_t> v) {
    buf_.insert(buf_.end(), v.begin(), v.end());
  }
  void string(std::string_view s) {
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Overwrite a previously written 16-bit field (lengths, checksums).
  void patch_u16(std::size_t offset, std::uint16_t v) {
    NETFAIL_ASSERT(offset + 2 <= buf_.size(), "patch out of range");
    buf_[offset] = static_cast<std::uint8_t>(v >> 8);
    buf_[offset + 1] = static_cast<std::uint8_t>(v);
  }

  std::size_t size() const { return buf_.size(); }
  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }
  bool done() const { return pos_ >= data_.size(); }

  Result<std::uint8_t> u8();
  Result<std::uint16_t> u16();
  Result<std::uint32_t> u24();
  Result<std::uint32_t> u32();
  /// Read exactly n bytes.
  Result<std::vector<std::uint8_t>> bytes(std::size_t n);
  /// Non-owning view of the next n bytes; valid as long as the underlying
  /// buffer. The allocation-free read for hot decode paths.
  Result<std::span<const std::uint8_t>> view(std::size_t n);
  /// Advance past n bytes without materializing them.
  Status skip(std::size_t n);
  Result<std::string> string(std::size_t n);
  /// Sub-reader over the next n bytes (for TLV bodies); advances this reader.
  Result<ByteReader> sub(std::size_t n);

 private:
  Status need(std::size_t n) {
    if (remaining() < n) {
      return make_error(ErrorCode::kTruncated,
                        "need " + std::to_string(n) + " bytes, have " +
                            std::to_string(remaining()));
    }
    return Status::ok_status();
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace netfail
