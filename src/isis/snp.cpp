#include "src/isis/snp.hpp"

#include <algorithm>

#include "src/common/strfmt.hpp"
#include "src/isis/bytes.hpp"
#include "src/isis/pdu.hpp"

namespace netfail::isis {
namespace {

constexpr std::uint8_t kProtocolDiscriminator = 0x83;
constexpr std::uint8_t kCsnpHeaderLength = 33;
constexpr std::uint8_t kPsnpHeaderLength = 17;
constexpr std::size_t kLspEntrySize = 16;

void write_common_header(ByteWriter& w, std::uint8_t pdu_type,
                         std::uint8_t header_length) {
  w.u8(kProtocolDiscriminator);
  w.u8(header_length);
  w.u8(1);  // version/protocol id extension
  w.u8(0);  // id length
  w.u8(pdu_type);
  w.u8(1);  // version
  w.u8(0);  // reserved
  w.u8(0);  // maximum area addresses
}

void write_lsp_id(ByteWriter& w, const LspId& id) {
  w.bytes(id.system.bytes());
  w.u8(id.pseudonode);
  w.u8(id.fragment);
}

Result<LspId> read_lsp_id(ByteReader& r) {
  Result<std::vector<std::uint8_t>> raw = r.bytes(6);
  if (!raw) return raw.error();
  std::array<std::uint8_t, 6> arr{};
  std::copy(raw->begin(), raw->end(), arr.begin());
  LspId id;
  id.system = OsiSystemId{arr};
  Result<std::uint8_t> pn = r.u8();
  if (!pn) return pn.error();
  id.pseudonode = *pn;
  Result<std::uint8_t> frag = r.u8();
  if (!frag) return frag.error();
  id.fragment = *frag;
  return id;
}

void write_entries_tlvs(ByteWriter& w, const std::vector<LspEntry>& entries) {
  constexpr std::size_t kPerTlv = 255 / kLspEntrySize;  // 15
  for (std::size_t base = 0; base < entries.size(); base += kPerTlv) {
    const std::size_t n = std::min(kPerTlv, entries.size() - base);
    w.u8(kTlvLspEntries);
    w.u8(static_cast<std::uint8_t>(n * kLspEntrySize));
    for (std::size_t i = base; i < base + n; ++i) {
      const LspEntry& e = entries[i];
      w.u16(e.remaining_lifetime);
      write_lsp_id(w, e.id);
      w.u32(e.sequence);
      w.u16(e.checksum);
    }
  }
}

Status read_entries_tlv(ByteReader& body, std::vector<LspEntry>& out) {
  while (!body.done()) {
    LspEntry e;
    Result<std::uint16_t> lifetime = body.u16();
    if (!lifetime) return lifetime.error();
    e.remaining_lifetime = *lifetime;
    Result<LspId> id = read_lsp_id(body);
    if (!id) return id.error();
    e.id = *id;
    Result<std::uint32_t> seq = body.u32();
    if (!seq) return seq.error();
    e.sequence = *seq;
    Result<std::uint16_t> ck = body.u16();
    if (!ck) return ck.error();
    e.checksum = *ck;
    out.push_back(e);
  }
  return Status::ok_status();
}

/// Shared parse for both SNP types after the type check.
Result<std::uint8_t> read_header_and_type(ByteReader& r) {
  Result<std::uint8_t> disc = r.u8();
  if (!disc) return disc.error();
  if (*disc != kProtocolDiscriminator) {
    return make_error(ErrorCode::kParseError, "bad protocol discriminator");
  }
  for (int i = 0; i < 3; ++i) {
    if (Result<std::uint8_t> b = r.u8(); !b) return b.error();
  }
  Result<std::uint8_t> type = r.u8();
  if (!type) return type.error();
  for (int i = 0; i < 3; ++i) {
    if (Result<std::uint8_t> b = r.u8(); !b) return b.error();
  }
  return static_cast<std::uint8_t>(*type & 0x1f);
}

Result<OsiSystemId> read_source(ByteReader& r) {
  // Source ID in SNPs is system id + circuit (7 bytes).
  Result<std::vector<std::uint8_t>> raw = r.bytes(7);
  if (!raw) return raw.error();
  std::array<std::uint8_t, 6> arr{};
  std::copy(raw->begin(), raw->begin() + 6, arr.begin());
  return OsiSystemId{arr};
}

}  // namespace

std::string LspId::to_string() const {
  return system.to_string() + strformat(".%02x-%02x", pseudonode, fragment);
}

Csnp::Csnp() {
  end.system = OsiSystemId{{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}};
  end.pseudonode = 0xff;
  end.fragment = 0xff;
}

std::vector<std::uint8_t> Csnp::encode() const {
  ByteWriter w;
  write_common_header(w, kPduTypeCsnpL2, kCsnpHeaderLength);
  const std::size_t len_offset = w.size();
  w.u16(0);  // PDU length, patched
  w.bytes(source.bytes());
  w.u8(0);  // circuit id
  write_lsp_id(w, start);
  write_lsp_id(w, end);
  write_entries_tlvs(w, entries);
  std::vector<std::uint8_t> out = w.take();
  out[len_offset] = static_cast<std::uint8_t>(out.size() >> 8);
  out[len_offset + 1] = static_cast<std::uint8_t>(out.size());
  return out;
}

Result<Csnp> Csnp::decode(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  Result<std::uint8_t> type = read_header_and_type(r);
  if (!type) return type.error();
  if (*type != kPduTypeCsnpL2) {
    return make_error(ErrorCode::kParseError, "not an L2 CSNP");
  }
  Csnp csnp;
  Result<std::uint16_t> len = r.u16();
  if (!len) return len.error();
  if (*len != data.size()) {
    return make_error(ErrorCode::kParseError, "PDU length field mismatch");
  }
  Result<OsiSystemId> src = read_source(r);
  if (!src) return src.error();
  csnp.source = *src;
  Result<LspId> start = read_lsp_id(r);
  if (!start) return start.error();
  csnp.start = *start;
  Result<LspId> end = read_lsp_id(r);
  if (!end) return end.error();
  csnp.end = *end;

  csnp.entries.clear();
  while (!r.done()) {
    Result<std::uint8_t> tlv_type = r.u8();
    if (!tlv_type) return tlv_type.error();
    Result<std::uint8_t> tlv_len = r.u8();
    if (!tlv_len) return tlv_len.error();
    Result<ByteReader> body = r.sub(*tlv_len);
    if (!body) return body.error();
    if (*tlv_type != kTlvLspEntries) continue;
    if (Status s = read_entries_tlv(*body, csnp.entries); !s) return s.error();
  }
  return csnp;
}

std::vector<std::uint8_t> Psnp::encode() const {
  ByteWriter w;
  write_common_header(w, kPduTypePsnpL2, kPsnpHeaderLength);
  const std::size_t len_offset = w.size();
  w.u16(0);
  w.bytes(source.bytes());
  w.u8(0);  // circuit id
  write_entries_tlvs(w, entries);
  std::vector<std::uint8_t> out = w.take();
  out[len_offset] = static_cast<std::uint8_t>(out.size() >> 8);
  out[len_offset + 1] = static_cast<std::uint8_t>(out.size());
  return out;
}

Result<Psnp> Psnp::decode(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  Result<std::uint8_t> type = read_header_and_type(r);
  if (!type) return type.error();
  if (*type != kPduTypePsnpL2) {
    return make_error(ErrorCode::kParseError, "not an L2 PSNP");
  }
  Psnp psnp;
  Result<std::uint16_t> len = r.u16();
  if (!len) return len.error();
  if (*len != data.size()) {
    return make_error(ErrorCode::kParseError, "PDU length field mismatch");
  }
  Result<OsiSystemId> src = read_source(r);
  if (!src) return src.error();
  psnp.source = *src;
  while (!r.done()) {
    Result<std::uint8_t> tlv_type = r.u8();
    if (!tlv_type) return tlv_type.error();
    Result<std::uint8_t> tlv_len = r.u8();
    if (!tlv_len) return tlv_len.error();
    Result<ByteReader> body = r.sub(*tlv_len);
    if (!body) return body.error();
    if (*tlv_type != kTlvLspEntries) continue;
    if (Status s = read_entries_tlv(*body, psnp.entries); !s) return s.error();
  }
  return psnp;
}

}  // namespace netfail::isis
