#include "src/isis/adjacency.hpp"

namespace netfail::isis {

const char* adjacency_change_reason_text(AdjacencyChangeReason r) {
  switch (r) {
    case AdjacencyChangeReason::kNew: return "New adjacency";
    case AdjacencyChangeReason::kHoldTimeExpired: return "hold time expired";
    case AdjacencyChangeReason::kInterfaceDown: return "interface state down";
    case AdjacencyChangeReason::kNeighborRestarted: return "neighbor restarted";
  }
  return "?";
}

AdjacencyFsm::AdjacencyFsm(OsiSystemId self, Params params)
    : self_(self), params_(params) {}

void AdjacencyFsm::set_state(TimePoint t, AdjacencyState s,
                             AdjacencyChangeReason reason) {
  if (s == state_) return;
  // Only transitions in and out of kUp are operationally visible (these are
  // what routers log and advertise); Initializing is internal but still
  // recorded for the tests.
  state_ = s;
  changes_.push_back(AdjacencyChange{t, s, reason});
}

void AdjacencyFsm::media_up(TimePoint t) {
  (void)t;
  media_is_up_ = true;
}

void AdjacencyFsm::media_down(TimePoint t) {
  media_is_up_ = false;
  neighbor_.reset();
  hold_deadline_.reset();
  set_state(t, AdjacencyState::kDown, AdjacencyChangeReason::kInterfaceDown);
}

void AdjacencyFsm::receive_hello(TimePoint t, const PointToPointHello& hello) {
  advance_to(t);
  if (!media_is_up_) return;  // hello cannot arrive over dead media

  // A different neighbor on the circuit means the old adjacency is gone.
  if (neighbor_ && *neighbor_ != hello.source) {
    set_state(t, AdjacencyState::kDown, AdjacencyChangeReason::kNeighborRestarted);
    neighbor_.reset();
  }
  neighbor_ = hello.source;
  hold_deadline_ = t + Duration::seconds(hello.holding_time);

  // RFC 5303 three-way logic: what the neighbor reports seeing decides our
  // state. If it lists us, the path is bidirectional.
  const bool they_see_us = hello.has_neighbor && hello.neighbor == self_;
  if (they_see_us) {
    set_state(t, AdjacencyState::kUp, AdjacencyChangeReason::kNew);
  } else {
    if (state_ == AdjacencyState::kUp) {
      // Neighbor restarted its side of the handshake.
      set_state(t, AdjacencyState::kDown,
                AdjacencyChangeReason::kNeighborRestarted);
    }
    set_state(t, AdjacencyState::kInitializing, AdjacencyChangeReason::kNew);
  }
}

void AdjacencyFsm::advance_to(TimePoint t) {
  if (hold_deadline_ && t >= *hold_deadline_) {
    const TimePoint expiry = *hold_deadline_;
    hold_deadline_.reset();
    neighbor_.reset();
    set_state(expiry, AdjacencyState::kDown,
              AdjacencyChangeReason::kHoldTimeExpired);
  }
}

PointToPointHello AdjacencyFsm::make_hello(TimePoint t) const {
  (void)t;
  PointToPointHello h;
  h.source = self_;
  h.holding_time =
      static_cast<std::uint16_t>(holding_time().total_seconds());
  switch (state_) {
    case AdjacencyState::kDown:
      h.three_way_state = ThreeWayState::kDown;
      break;
    case AdjacencyState::kInitializing:
      h.three_way_state = ThreeWayState::kInitializing;
      break;
    case AdjacencyState::kUp:
      h.three_way_state = ThreeWayState::kUp;
      break;
  }
  if (neighbor_) {
    h.has_neighbor = true;
    h.neighbor = *neighbor_;
  }
  return h;
}

std::vector<AdjacencyChange> AdjacencyFsm::take_changes() {
  std::vector<AdjacencyChange> out;
  out.swap(changes_);
  return out;
}

}  // namespace netfail::isis
