// Link-state database (ISO 10589 sect. 7.3): the authoritative store of the
// freshest LSP from every source, with lifetime aging and purge handling.
//
// The extractor in extract.cpp keeps only the per-source reachability
// deltas it needs; this class is the full database a real IS would keep —
// usable to answer "what did the network look like at time T", to build
// CSNP summaries, and to feed the SPF computation in spf.hpp.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "src/common/time.hpp"
#include "src/isis/pdu.hpp"
#include "src/isis/snp.hpp"

namespace netfail::isis {

enum class InstallResult {
  kInstalled,       // newer than anything held; now authoritative
  kStale,           // older than (or equal to) the held copy; ignored
  kPurged,          // zero-lifetime LSP: the source withdrew it
};

class LinkStateDatabase {
 public:
  /// Install a received LSP. `now` drives lifetime bookkeeping.
  InstallResult install(Lsp lsp, TimePoint now);

  /// Expire entries whose remaining lifetime has run out.
  void advance_to(TimePoint now);

  /// The freshest live LSP from `id`, if any.
  const Lsp* lookup(const LspId& id) const;
  std::optional<std::uint32_t> sequence_of(const LspId& id) const;

  std::size_t size() const { return entries_.size(); }

  /// All live LSPs in LSP-ID order.
  std::vector<const Lsp*> snapshot() const;

  /// Build the CSNP summary of the whole database (entries in ID order).
  Csnp build_csnp(const OsiSystemId& self, TimePoint now) const;

  /// Entries we are missing or hold stale copies of, judging by a received
  /// CSNP — the set a real IS would request via PSNP.
  std::vector<LspEntry> missing_from(const Csnp& csnp) const;

 private:
  struct Entry {
    Lsp lsp;
    TimePoint installed_at;
    TimePoint expires_at;
  };

  std::map<LspId, Entry> entries_;
};

}  // namespace netfail::isis
