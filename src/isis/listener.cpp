#include "src/isis/listener.hpp"

#include "src/common/assert.hpp"

namespace netfail::isis {

void Listener::deliver(TimePoint t, std::vector<std::uint8_t> bytes) {
  NETFAIL_ASSERT(records_.empty() || records_.back().received_at <= t,
                 "LSPs must be delivered in time order");
  if (is_offline(t)) {
    ++dropped_;
    return;
  }
  records_.push_back(LspRecord{t, std::move(bytes)});
}

}  // namespace netfail::isis
