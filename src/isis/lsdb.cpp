#include "src/isis/lsdb.hpp"

#include <algorithm>

#include "src/isis/checksum.hpp"

namespace netfail::isis {
namespace {

LspId id_of(const Lsp& lsp) {
  return LspId{lsp.source, lsp.pseudonode, lsp.fragment};
}

/// The LSP checksum as it appears on the wire (recomputed from content).
std::uint16_t wire_checksum(const Lsp& lsp) {
  const std::vector<std::uint8_t> bytes = lsp.encode();
  // Offsets mirror pdu.cpp: checksum at 24, covered region starts at 12.
  return static_cast<std::uint16_t>((bytes[24] << 8) | bytes[25]);
}

}  // namespace

InstallResult LinkStateDatabase::install(Lsp lsp, TimePoint now) {
  const LspId id = id_of(lsp);
  const auto it = entries_.find(id);
  if (it != entries_.end() && lsp.sequence <= it->second.lsp.sequence) {
    return InstallResult::kStale;
  }
  if (lsp.remaining_lifetime == 0) {
    // A purge: the source (or an aging IS) removed this LSP.
    entries_.erase(id);
    return InstallResult::kPurged;
  }
  const TimePoint expires = now + Duration::seconds(lsp.remaining_lifetime);
  entries_.insert_or_assign(id, Entry{std::move(lsp), now, expires});
  return InstallResult::kInstalled;
}

void LinkStateDatabase::advance_to(TimePoint now) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.expires_at <= now) {
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

const Lsp* LinkStateDatabase::lookup(const LspId& id) const {
  const auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second.lsp;
}

std::optional<std::uint32_t> LinkStateDatabase::sequence_of(
    const LspId& id) const {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return std::nullopt;
  return it->second.lsp.sequence;
}

std::vector<const Lsp*> LinkStateDatabase::snapshot() const {
  std::vector<const Lsp*> out;
  out.reserve(entries_.size());
  for (const auto& [id, entry] : entries_) out.push_back(&entry.lsp);
  return out;
}

Csnp LinkStateDatabase::build_csnp(const OsiSystemId& self,
                                   TimePoint now) const {
  Csnp csnp;
  csnp.source = self;
  for (const auto& [id, entry] : entries_) {
    LspEntry e;
    e.id = id;
    e.sequence = entry.lsp.sequence;
    const Duration left = entry.expires_at - now;
    e.remaining_lifetime = static_cast<std::uint16_t>(
        std::clamp<std::int64_t>(left.total_seconds(), 0, 0xffff));
    e.checksum = wire_checksum(entry.lsp);
    csnp.entries.push_back(e);
  }
  return csnp;
}

std::vector<LspEntry> LinkStateDatabase::missing_from(const Csnp& csnp) const {
  std::vector<LspEntry> out;
  for (const LspEntry& e : csnp.entries) {
    const auto have = sequence_of(e.id);
    if (!have || *have < e.sequence) out.push_back(e);
  }
  return out;
}

}  // namespace netfail::isis
