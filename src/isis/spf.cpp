#include "src/isis/spf.hpp"

#include <algorithm>
#include <queue>
#include <set>

namespace netfail::isis {
namespace {

/// Directed neighbor entry with the advertised metric.
struct Arc {
  OsiSystemId to;
  std::uint32_t metric;
};

}  // namespace

SpfResult shortest_paths(const LinkStateDatabase& db, const OsiSystemId& root) {
  // Gather each system's advertisements. Fragments of one source merge.
  std::map<OsiSystemId, std::vector<Arc>> arcs;
  std::map<OsiSystemId, std::vector<IpReachEntry>> prefixes_of;
  for (const Lsp* lsp : db.snapshot()) {
    std::vector<Arc>& out = arcs[lsp->source];
    for (const IsReachEntry& e : lsp->is_reach) {
      out.push_back(Arc{e.neighbor, e.metric});
    }
    auto& prefixes = prefixes_of[lsp->source];
    prefixes.insert(prefixes.end(), lsp->ip_reach.begin(), lsp->ip_reach.end());
  }

  // Two-way check: keep arc u->v only if v also advertises u. Parallel
  // adjacencies collapse to the cheapest.
  auto advertises = [&arcs](const OsiSystemId& from, const OsiSystemId& to) {
    const auto it = arcs.find(from);
    if (it == arcs.end()) return false;
    return std::any_of(it->second.begin(), it->second.end(),
                       [&to](const Arc& a) { return a.to == to; });
  };

  SpfResult result;
  if (!arcs.contains(root) && !prefixes_of.contains(root)) return result;

  using QueueEntry = std::pair<std::uint32_t, OsiSystemId>;  // (distance, node)
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> heap;
  std::map<OsiSystemId, std::uint32_t> best;
  std::map<OsiSystemId, std::optional<OsiSystemId>> hop;
  heap.emplace(0, root);
  best[root] = 0;
  hop[root] = std::nullopt;

  while (!heap.empty()) {
    const auto [dist, node] = heap.top();
    heap.pop();
    const auto settled = result.nodes.find(node);
    if (settled != result.nodes.end()) continue;
    result.nodes.emplace(node, SpfNode{node, dist, hop[node]});

    const auto it = arcs.find(node);
    if (it == arcs.end()) continue;
    for (const Arc& arc : it->second) {
      if (!advertises(arc.to, node)) continue;  // two-way check
      const std::uint32_t next = dist + arc.metric;
      const auto known = best.find(arc.to);
      if (known != best.end() && known->second <= next) continue;
      best[arc.to] = next;
      // First hop: inherit from the parent, or the neighbor itself when the
      // parent is the root.
      hop[arc.to] = (node == root) ? std::optional<OsiSystemId>(arc.to)
                                   : hop[node];
      heap.emplace(next, arc.to);
    }
  }

  // Prefix reachability: best node distance + advertised prefix metric.
  for (const auto& [system, prefixes] : prefixes_of) {
    const auto node = result.nodes.find(system);
    if (node == result.nodes.end()) continue;
    for (const IpReachEntry& e : prefixes) {
      const std::uint32_t total = node->second.distance + e.metric;
      const auto it = result.prefixes.find(e.prefix);
      if (it == result.prefixes.end() || total < it->second) {
        result.prefixes[e.prefix] = total;
      }
    }
  }
  return result;
}

std::vector<OsiSystemId> unreachable_systems(const LinkStateDatabase& db,
                                             const OsiSystemId& root) {
  const SpfResult spf = shortest_paths(db, root);
  std::set<OsiSystemId> all;
  for (const Lsp* lsp : db.snapshot()) all.insert(lsp->source);
  std::vector<OsiSystemId> out;
  for (const OsiSystemId& system : all) {
    if (!spf.reaches(system)) out.push_back(system);
  }
  return out;
}

}  // namespace netfail::isis
