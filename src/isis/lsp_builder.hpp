// Per-router LSP origination: current advertisement content plus the
// ISO 10589 generation throttle.
//
// The throttle is load-bearing for the paper's findings: a router batches
// LSP generation (minimumLSPGenerationInterval), so link state that bounces
// faster than the throttle window never appears in any LSP — one of the
// reasons syslog and IS-IS genuinely disagree during flapping episodes.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/common/time.hpp"
#include "src/isis/pdu.hpp"

namespace netfail::isis {

/// Tracks what one router currently advertises and builds the LSP bytes.
class LspOriginator {
 public:
  LspOriginator(OsiSystemId self, std::string hostname);

  /// Add/remove one adjacency toward `neighbor`. Parallel adjacencies to the
  /// same neighbor stack: each up adjacency contributes one TLV-22 entry,
  /// which is exactly why the listener cannot tell members apart.
  void adjacency_up(OsiSystemId neighbor, std::uint32_t metric);
  void adjacency_down(OsiSystemId neighbor, std::uint32_t metric);

  /// Add/remove a directly connected prefix (the link /31s + loopback).
  void prefix_up(Ipv4Prefix prefix, std::uint32_t metric);
  void prefix_down(Ipv4Prefix prefix);

  /// Build the current LSP; bumps the sequence number.
  Lsp build();
  /// Current sequence number (next build() will use sequence()+1).
  std::uint32_t sequence() const { return sequence_; }

  const OsiSystemId& system_id() const { return self_; }

 private:
  OsiSystemId self_;
  std::string hostname_;
  std::uint32_t sequence_ = 0;
  // (neighbor, metric) -> count of up parallel adjacencies.
  std::map<std::pair<OsiSystemId, std::uint32_t>, int> adjacencies_;
  std::map<Ipv4Prefix, std::uint32_t> prefixes_;  // prefix -> metric
};

/// ISO 10589 minimumLSPGenerationInterval: at most one LSP per interval; a
/// change arriving inside the quiet period is deferred (and batched with any
/// later changes) until the interval expires.
class LspThrottle {
 public:
  explicit LspThrottle(Duration min_interval) : min_interval_(min_interval) {}

  /// A content change happened at `t`. Returns the time at which an LSP
  /// generation should be scheduled, or nullopt when an already-pending
  /// generation will cover this change.
  std::optional<TimePoint> on_change(TimePoint t);

  /// The scheduled generation fired at `t`.
  void on_generated(TimePoint t);

  std::optional<TimePoint> pending() const { return pending_; }

 private:
  Duration min_interval_;
  std::optional<TimePoint> last_generated_;
  std::optional<TimePoint> pending_;
};

}  // namespace netfail::isis
