#include "src/isis/pdu.hpp"

#include <algorithm>

#include "src/common/strfmt.hpp"
#include "src/isis/bytes.hpp"
#include "src/isis/checksum.hpp"

namespace netfail::isis {
namespace {

constexpr std::uint8_t kProtocolDiscriminator = 0x83;
constexpr std::uint8_t kVersionProtocolIdExt = 1;
constexpr std::uint8_t kVersion = 1;
constexpr std::uint8_t kLspHeaderLength = 27;
constexpr std::uint8_t kP2PHelloHeaderLength = 20;
// Offsets within the full LSP PDU.
constexpr std::size_t kLspPduLengthOffset = 8;
constexpr std::size_t kLspChecksumCoverStart = 12;  // from LSP ID onward
constexpr std::size_t kLspChecksumOffset = 24;

void write_common_header(ByteWriter& w, std::uint8_t pdu_type,
                         std::uint8_t header_length) {
  w.u8(kProtocolDiscriminator);
  w.u8(header_length);
  w.u8(kVersionProtocolIdExt);
  w.u8(0);  // ID length: 0 means the standard 6 bytes
  w.u8(pdu_type);
  w.u8(kVersion);
  w.u8(0);  // reserved
  w.u8(0);  // maximum area addresses: 0 means 3
};

/// Parse + validate the 8-byte common header; returns the PDU type.
Result<std::uint8_t> read_common_header(ByteReader& r) {
  Result<std::uint8_t> disc = r.u8();
  if (!disc) return disc.error();
  if (*disc != kProtocolDiscriminator) {
    return make_error(ErrorCode::kParseError,
                      strformat("bad protocol discriminator 0x%02x", *disc));
  }
  Result<std::uint8_t> header_len = r.u8();
  if (!header_len) return header_len.error();
  Result<std::uint8_t> version_ext = r.u8();
  if (!version_ext) return version_ext.error();
  Result<std::uint8_t> id_len = r.u8();
  if (!id_len) return id_len.error();
  if (*id_len != 0 && *id_len != 6) {
    return make_error(ErrorCode::kParseError, "unsupported ID length");
  }
  Result<std::uint8_t> type = r.u8();
  if (!type) return type.error();
  for (int i = 0; i < 3; ++i) {
    if (Result<std::uint8_t> b = r.u8(); !b) return b.error();
  }
  return static_cast<std::uint8_t>(*type & 0x1f);
}

Result<OsiSystemId> read_system_id(ByteReader& r) {
  // view(), not bytes(): this runs once per IS-reach entry, and a
  // heap-backed vector here dominated the whole decode cost.
  Result<std::span<const std::uint8_t>> raw = r.view(6);
  if (!raw) return raw.error();
  std::array<std::uint8_t, 6> arr{};
  std::copy(raw->begin(), raw->end(), arr.begin());
  return OsiSystemId{arr};
}

}  // namespace

std::string Lsp::lsp_id_string() const {
  return source.to_string() + strformat(".%02x-%02x", pseudonode, fragment);
}

std::vector<std::uint8_t> Lsp::encode() const {
  ByteWriter w;
  write_common_header(w, kPduTypeLspL2, kLspHeaderLength);
  w.u16(0);  // PDU length, patched below
  w.u16(remaining_lifetime);
  w.bytes(source.bytes());
  w.u8(pseudonode);
  w.u8(fragment);
  w.u32(sequence);
  w.u16(0);  // checksum, patched below
  w.u8(0x03);  // IS type: level-2

  // TLV 137: dynamic hostname.
  if (!hostname.empty()) {
    NETFAIL_ASSERT(hostname.size() <= 255, "hostname too long for TLV");
    w.u8(kTlvDynamicHostname);
    w.u8(static_cast<std::uint8_t>(hostname.size()));
    w.string(hostname);
  }

  // TLV 22: extended IS reachability, 11 bytes per entry, max 23 per TLV.
  constexpr std::size_t kIsEntrySize = 11;
  constexpr std::size_t kIsEntriesPerTlv = 255 / kIsEntrySize;
  for (std::size_t base = 0; base < is_reach.size(); base += kIsEntriesPerTlv) {
    const std::size_t n = std::min(kIsEntriesPerTlv, is_reach.size() - base);
    w.u8(kTlvExtendedIsReach);
    w.u8(static_cast<std::uint8_t>(n * kIsEntrySize));
    for (std::size_t i = base; i < base + n; ++i) {
      const IsReachEntry& e = is_reach[i];
      w.bytes(e.neighbor.bytes());
      w.u8(e.pseudonode);
      w.u24(e.metric & 0xffffff);
      w.u8(0);  // no sub-TLVs
    }
  }

  // TLV 135: extended IP reachability; entry size depends on prefix length.
  {
    std::size_t i = 0;
    while (i < ip_reach.size()) {
      // Fill one TLV greedily.
      std::size_t bytes_used = 0;
      std::size_t j = i;
      while (j < ip_reach.size()) {
        const std::size_t entry_size =
            4 + 1 +
            static_cast<std::size_t>((ip_reach[j].prefix.length() + 7) / 8);
        if (bytes_used + entry_size > 255) break;
        bytes_used += entry_size;
        ++j;
      }
      NETFAIL_ASSERT(j > i, "IP reach entry does not fit any TLV");
      w.u8(kTlvExtendedIpReach);
      w.u8(static_cast<std::uint8_t>(bytes_used));
      for (; i < j; ++i) {
        const IpReachEntry& e = ip_reach[i];
        w.u32(e.metric);
        // Control byte: up/down bit 7 = 0, sub-TLV bit 6 = 0, length in low 6.
        w.u8(static_cast<std::uint8_t>(e.prefix.length()));
        const std::uint32_t net = e.prefix.network().value();
        const int nbytes = (e.prefix.length() + 7) / 8;
        for (int b = 0; b < nbytes; ++b) {
          w.u8(static_cast<std::uint8_t>(net >> (24 - 8 * b)));
        }
      }
    }
  }

  std::vector<std::uint8_t> out = w.take();
  // Patch PDU length.
  const std::uint16_t len = static_cast<std::uint16_t>(out.size());
  out[kLspPduLengthOffset] = static_cast<std::uint8_t>(len >> 8);
  out[kLspPduLengthOffset + 1] = static_cast<std::uint8_t>(len);
  // Patch checksum: covers LSP ID (offset 12) through end; the checksum
  // field sits at offset 24, i.e. offset 12 within the covered span.
  const std::span<const std::uint8_t> covered{out.data() + kLspChecksumCoverStart,
                                              out.size() - kLspChecksumCoverStart};
  const std::uint16_t ck =
      fletcher_checksum(covered, kLspChecksumOffset - kLspChecksumCoverStart);
  out[kLspChecksumOffset] = static_cast<std::uint8_t>(ck >> 8);
  out[kLspChecksumOffset + 1] = static_cast<std::uint8_t>(ck);
  return out;
}

Result<Lsp> Lsp::decode(std::span<const std::uint8_t> data) {
  Lsp lsp;
  if (Status s = decode_into(data, lsp); !s) return s.error();
  return lsp;
}

Status Lsp::decode_into(std::span<const std::uint8_t> data, Lsp& lsp) {
  // Reset the output while keeping its heap storage for reuse.
  lsp.source = OsiSystemId{};
  lsp.pseudonode = 0;
  lsp.fragment = 0;
  lsp.sequence = 1;
  lsp.remaining_lifetime = 1199;
  lsp.hostname.clear();
  lsp.is_reach.clear();
  lsp.ip_reach.clear();

  // Checksum first: a corrupted LSP must never reach the analysis.
  if (data.size() < kLspChecksumOffset + 2) {
    return make_error(ErrorCode::kTruncated, "LSP shorter than fixed header");
  }
  if (!fletcher_verify(data.subspan(kLspChecksumCoverStart),
                       kLspChecksumOffset - kLspChecksumCoverStart)) {
    return make_error(ErrorCode::kChecksumMismatch, "LSP checksum invalid");
  }

  // The decode below runs once per received LSP — tens of millions of times
  // in a long capture — so it reads through a raw cursor with one bounds
  // check per fixed-size field group instead of a Result per octet. Errors
  // are constructed only on the (cold) malformed-input paths, with the same
  // codes the ByteReader-based decoder produced.
  const std::uint8_t* p = data.data();
  const std::uint8_t* const end = p + data.size();

  // Common 8-byte header. The size was established above (>= 26 bytes).
  if (p[0] != kProtocolDiscriminator) {
    return make_error(ErrorCode::kParseError,
                      strformat("bad protocol discriminator 0x%02x", p[0]));
  }
  if (p[3] != 0 && p[3] != 6) {
    return make_error(ErrorCode::kParseError, "unsupported ID length");
  }
  const std::uint8_t type = p[4] & 0x1f;
  if (type != kPduTypeLspL2) {
    return make_error(ErrorCode::kParseError,
                      strformat("not an L2 LSP: pdu type %u", type));
  }

  // Fixed LSP header: PDU length, lifetime, LSP ID, sequence, checksum,
  // flags (offsets 8..26).
  const std::uint16_t pdu_len =
      static_cast<std::uint16_t>((std::uint16_t{p[8]} << 8) | p[9]);
  if (pdu_len != data.size()) {
    return make_error(ErrorCode::kParseError, "PDU length field mismatch");
  }
  lsp.remaining_lifetime =
      static_cast<std::uint16_t>((std::uint16_t{p[10]} << 8) | p[11]);
  std::array<std::uint8_t, 6> src{};
  std::copy(p + 12, p + 18, src.begin());
  lsp.source = OsiSystemId{src};
  lsp.pseudonode = p[18];
  lsp.fragment = p[19];
  lsp.sequence = (std::uint32_t{p[20]} << 24) | (std::uint32_t{p[21]} << 16) |
                 (std::uint32_t{p[22]} << 8) | p[23];
  // p[24..25] checksum (verified above), p[26] flags.
  if (data.size() < 27) {
    return make_error(ErrorCode::kTruncated, "need 1 bytes, have 0");
  }
  p += 27;

  // TLVs.
  while (p < end) {
    if (end - p < 2) {
      return make_error(ErrorCode::kTruncated, "need 1 bytes, have 0");
    }
    const std::uint8_t tlv_type = p[0];
    const std::uint8_t tlv_len = p[1];
    p += 2;
    if (end - p < tlv_len) {
      return make_error(ErrorCode::kTruncated,
                        "need " + std::to_string(tlv_len) + " bytes, have " +
                            std::to_string(end - p));
    }
    const std::uint8_t* b = p;
    const std::uint8_t* const bend = p + tlv_len;
    p = bend;

    switch (tlv_type) {
      case kTlvDynamicHostname:
        lsp.hostname.assign(reinterpret_cast<const char*>(b),
                            static_cast<std::size_t>(tlv_len));
        break;
      case kTlvExtendedIsReach: {
        lsp.is_reach.reserve(lsp.is_reach.size() + tlv_len / 11);
        while (b < bend) {
          // Fixed part: 6-byte neighbor, pseudonode, 24-bit metric, sub-TLV
          // length — 11 bytes checked at once.
          if (bend - b < 11) {
            return make_error(ErrorCode::kTruncated, "truncated IS-reach entry");
          }
          IsReachEntry e;
          std::array<std::uint8_t, 6> nbr{};
          std::copy(b, b + 6, nbr.begin());
          e.neighbor = OsiSystemId{nbr};
          e.pseudonode = b[6];
          e.metric = (std::uint32_t{b[7]} << 16) | (std::uint32_t{b[8]} << 8) |
                     b[9];
          const std::uint8_t sub_len = b[10];
          b += 11;
          if (bend - b < sub_len) {
            return make_error(ErrorCode::kTruncated, "truncated IS-reach sub-TLVs");
          }
          b += sub_len;
          lsp.is_reach.push_back(e);
        }
        break;
      }
      case kTlvExtendedIpReach: {
        lsp.ip_reach.reserve(lsp.ip_reach.size() + tlv_len / 5);
        while (b < bend) {
          // Fixed part: 32-bit metric + control byte.
          if (bend - b < 5) {
            return make_error(ErrorCode::kTruncated, "truncated IP-reach entry");
          }
          IpReachEntry e;
          e.metric = (std::uint32_t{b[0]} << 24) | (std::uint32_t{b[1]} << 16) |
                     (std::uint32_t{b[2]} << 8) | b[3];
          const std::uint8_t control = b[4];
          b += 5;
          const int plen = control & 0x3f;
          if (plen > 32) {
            return make_error(ErrorCode::kParseError, "bad prefix length");
          }
          const int nbytes = (plen + 7) / 8;
          if (bend - b < nbytes) {
            return make_error(ErrorCode::kTruncated, "truncated IP-reach prefix");
          }
          std::uint32_t net = 0;
          for (int i = 0; i < nbytes; ++i) {
            net |= std::uint32_t{b[i]} << (24 - 8 * i);
          }
          b += nbytes;
          e.prefix = Ipv4Prefix{Ipv4Address{net}, plen};
          if (control & 0x40) {  // sub-TLVs present
            if (bend - b < 1) {
              return make_error(ErrorCode::kTruncated, "truncated IP-reach sub-TLVs");
            }
            const std::uint8_t sub_len = *b;
            ++b;
            if (bend - b < sub_len) {
              return make_error(ErrorCode::kTruncated, "truncated IP-reach sub-TLVs");
            }
            b += sub_len;
          }
          lsp.ip_reach.push_back(e);
        }
        break;
      }
      default:
        break;  // unknown TLVs are skipped, as the standard requires
    }
  }
  return Status::ok_status();
}

std::vector<std::uint8_t> PointToPointHello::encode() const {
  ByteWriter w;
  write_common_header(w, kPduTypeP2PHello, kP2PHelloHeaderLength);
  w.u8(0x02);  // circuit type: level 2 only
  w.bytes(source.bytes());
  w.u16(holding_time);
  const std::size_t len_offset = w.size();
  w.u16(0);  // PDU length, patched below
  w.u8(circuit_id);

  // TLV 240: point-to-point three-way adjacency (RFC 5303).
  w.u8(kTlvThreeWayAdjacency);
  w.u8(static_cast<std::uint8_t>(has_neighbor ? 15 : 5));
  w.u8(static_cast<std::uint8_t>(three_way_state));
  w.u32(circuit_id);  // extended local circuit ID
  if (has_neighbor) {
    w.bytes(neighbor.bytes());
    w.u32(0);  // neighbor extended circuit ID
  }

  std::vector<std::uint8_t> out = w.take();
  out[len_offset] = static_cast<std::uint8_t>(out.size() >> 8);
  out[len_offset + 1] = static_cast<std::uint8_t>(out.size());
  return out;
}

Result<PointToPointHello> PointToPointHello::decode(
    std::span<const std::uint8_t> data) {
  ByteReader r(data);
  Result<std::uint8_t> type = read_common_header(r);
  if (!type) return type.error();
  if (*type != kPduTypeP2PHello) {
    return make_error(ErrorCode::kParseError, "not a point-to-point hello");
  }

  PointToPointHello hello;
  if (Result<std::uint8_t> circuit_type = r.u8(); !circuit_type) {
    return circuit_type.error();
  }
  Result<OsiSystemId> src = read_system_id(r);
  if (!src) return src.error();
  hello.source = *src;
  Result<std::uint16_t> hold = r.u16();
  if (!hold) return hold.error();
  hello.holding_time = *hold;
  Result<std::uint16_t> pdu_len = r.u16();
  if (!pdu_len) return pdu_len.error();
  if (*pdu_len != data.size()) {
    return make_error(ErrorCode::kParseError, "PDU length field mismatch");
  }
  Result<std::uint8_t> circuit = r.u8();
  if (!circuit) return circuit.error();
  hello.circuit_id = *circuit;

  while (!r.done()) {
    Result<std::uint8_t> tlv_type = r.u8();
    if (!tlv_type) return tlv_type.error();
    Result<std::uint8_t> tlv_len = r.u8();
    if (!tlv_len) return tlv_len.error();
    Result<ByteReader> body = r.sub(*tlv_len);
    if (!body) return body.error();
    if (*tlv_type != kTlvThreeWayAdjacency) continue;

    Result<std::uint8_t> state = body->u8();
    if (!state) return state.error();
    if (*state > 2) {
      return make_error(ErrorCode::kParseError, "bad three-way state");
    }
    hello.three_way_state = static_cast<ThreeWayState>(*state);
    if (Result<std::uint32_t> ext = body->u32(); !ext) return ext.error();
    if (body->remaining() >= 6) {
      Result<OsiSystemId> nbr = read_system_id(*body);
      if (!nbr) return nbr.error();
      hello.neighbor = *nbr;
      hello.has_neighbor = true;
    }
  }
  return hello;
}

Result<std::uint8_t> pdu_type(std::span<const std::uint8_t> data) {
  ByteReader r(data);
  return read_common_header(r);
}

}  // namespace netfail::isis
