// LSP stream -> link state transitions.
//
// Implements the paper's listener-side methodology (sect. 3.2/3.4): for each
// received LSP, diff the advertised IS reachability and IP reachability
// against the sender's previous advertisement, and resolve changes to links
// via the config-mined census. IS reachability is tracked per directed host
// pair, and a link-level transition fires when the *bidirectional* adjacency
// count changes — mirroring how the withdrawal by either end takes the
// adjacency out of service. Multi-link adjacencies cannot be resolved to a
// member link and are flagged instead (the paper omits them, sect. 3.4).
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/common/columns.hpp"
#include "src/common/events.hpp"
#include "src/common/ids.hpp"
#include "src/common/sym.hpp"
#include "src/config/census.hpp"
#include "src/isis/listener.hpp"
#include "src/isis/pdu.hpp"
#include "src/topology/ipv4.hpp"
#include "src/topology/osi.hpp"

namespace netfail::svc {
class EngineCodec;  // durable snapshot serializer (src/svc)
}  // namespace netfail::svc

namespace netfail::isis {

/// Which LSP field a transition was inferred from (paper Table 2 compares
/// the two).
enum class ReachabilityField { kIsReach, kIpReach };

inline const char* reachability_field_name(ReachabilityField f) {
  return f == ReachabilityField::kIsReach ? "IS reachability" : "IP reachability";
}

struct IsisTransition {
  TimePoint time;
  LinkDirection dir = LinkDirection::kDown;
  ReachabilityField field = ReachabilityField::kIsReach;
  /// Resolved census link; invalid when the change hit a multi-link
  /// adjacency (IS reach cannot tell members apart) or an unknown pair.
  LinkId link;
  bool multilink = false;
  /// Host pair, for diagnostics and multi-link accounting (interned).
  Symbol host_a;
  Symbol host_b;
  /// IS-reach only: the bidirectional adjacency count after this change.
  /// Lets consumers reconstruct the *logical* adjacency state of multi-link
  /// pairs (0 = the whole adjacency is down) even though the member link is
  /// unidentifiable.
  int pair_count_after = -1;
};

struct ExtractionStats {
  std::size_t lsps_processed = 0;
  std::size_t checksum_failures = 0;
  std::size_t parse_failures = 0;
  std::size_t stale_lsps = 0;            // non-increasing sequence numbers
  std::size_t purges = 0;                // zero-lifetime LSPs (withdraw all)
  std::size_t unknown_host_pairs = 0;    // adjacency to a host not in census
  std::size_t unknown_prefixes = 0;      // /31 not in census
  std::size_t multilink_transitions = 0; // IS-reach changes on multi-link pairs
};

struct IsisExtraction {
  std::vector<IsisTransition> is_reach;
  std::vector<IsisTransition> ip_reach;
  ExtractionStats stats;
};

/// Process a listener's record stream. Records must be time-ordered (the
/// listener guarantees this).
IsisExtraction extract_transitions(const std::vector<LspRecord>& records,
                                   const LinkCensus& census);

/// Columnar batch form (DESIGN.md §13): decode and diff the record stream,
/// bulk-appending the *reconstruction-eligible* IS-reachability transitions
/// (link-resolved, single-link) to `out` — exactly the rows
/// `reconstruct_from_isis` keeps from `extract_transitions().is_reach`, in
/// the same order. The tag carries only the direction bit; `reporter` is
/// host_a. IP-reachability and multi-link transitions are not columnized
/// (the comparison tables still consume the AoS extraction); `stats` gets
/// the full accounting either way.
void extract_columns(const std::vector<LspRecord>& records,
                     const LinkCensus& census, EventColumns& out,
                     ExtractionStats& stats);

/// Incremental form of `extract_transitions`: feed LSP records one at a
/// time and receive the transitions each record implies. Batch extraction
/// is a thin loop over this class, so both paths share one diff algorithm.
///
/// The extractor is a plain value (the census is referenced, not owned), so
/// the streaming engine can copy it into a checkpoint and resume later.
class StreamingExtractor {
 public:
  StreamingExtractor() = default;
  explicit StreamingExtractor(const LinkCensus* census) : census_(census) {}

  /// Decode and diff one record; transitions (IS-reach and IP-reach, in
  /// emission order) are appended to `out`. Records must arrive in listener
  /// time order.
  void feed(const LspRecord& rec, std::vector<IsisTransition>& out);

  const ExtractionStats& stats() const { return stats_; }
  /// Number of LSP sources (routers) currently tracked — the extractor's
  /// state is O(sources + adjacencies), independent of records fed.
  std::size_t tracked_sources() const { return sources_.size(); }

 private:
  friend class netfail::svc::EngineCodec;

  /// Everything remembered about one LSP source between packets.
  struct SourceState {
    std::uint32_t sequence = 0;
    Symbol hostname;
    /// neighbor -> up adjacencies, sorted by neighbor. A sorted vector
    /// rather than a map: diffing walks it in order anyway, and assigning
    /// the new counts reuses capacity instead of re-allocating nodes.
    std::vector<std::pair<OsiSystemId, int>> adjacency_count;
    std::vector<Ipv4Prefix> prefixes;            // sorted
    bool initialized = false;                    // first LSP sets the baseline
  };

  /// Bidirectional adjacency bookkeeping for one unordered host pair.
  struct PairState {
    int count_ab = 0;  // adjacencies advertised by the lexically-first host
    int count_ba = 0;
    /// True once both hosts have reported a baseline; from then on changes
    /// in the bidirectional minimum are emitted as transitions.
    bool active = false;
    int last_min = 0;
  };

  void emit_is_transition(TimePoint t, LinkDirection dir, Symbol host_a,
                          Symbol host_b, int count_after,
                          std::vector<IsisTransition>& out);
  void update_pair(TimePoint t, Symbol from, Symbol to, int new_count,
                   bool from_is_baseline, std::vector<IsisTransition>& out);

  const LinkCensus* census_ = nullptr;
  ExtractionStats stats_;
  // Lookup-only tables (never iterated), so unordered + symbol keys is safe:
  // emission order is fully determined by the sorted per-source diffs.
  std::unordered_map<OsiSystemId, SourceState> sources_;
  std::unordered_map<std::uint64_t, PairState> pairs_;  // sym::pair_key
  std::unordered_set<Symbol> initialized_hosts_;
  std::unordered_map<Ipv4Prefix, int> prefix_advertisers_;
  // Per-feed scratch (reused so steady-state feeds allocate nothing).
  Lsp scratch_lsp_;
  std::vector<std::pair<OsiSystemId, int>> scratch_counts_;
  std::vector<Ipv4Prefix> scratch_prefixes_;
};

}  // namespace netfail::isis
