#include "src/isis/extract.hpp"

#include <algorithm>
#include <optional>

#include "src/common/metrics.hpp"
#include "src/isis/pdu.hpp"

namespace netfail::isis {
namespace {

std::pair<std::string, std::string> ordered(std::string a, std::string b) {
  if (b < a) a.swap(b);
  return {std::move(a), std::move(b)};
}

struct IsisMetrics {
  metrics::Counter& lsps = metrics::global().counter("isis.extract.lsps");
  metrics::Counter& decode_failures =
      metrics::global().counter("isis.extract.decode_failures");
  metrics::Counter& stale = metrics::global().counter("isis.extract.stale_lsps");
  metrics::Counter& transitions =
      metrics::global().counter("isis.extract.transitions");
};

IsisMetrics& isis_metrics() {
  static IsisMetrics m;
  return m;
}

}  // namespace

void StreamingExtractor::emit_is_transition(TimePoint t, LinkDirection dir,
                                            const std::string& host_a,
                                            const std::string& host_b,
                                            int count_after,
                                            std::vector<IsisTransition>& out) {
  IsisTransition tr;
  tr.time = t;
  tr.dir = dir;
  tr.field = ReachabilityField::kIsReach;
  tr.host_a = host_a;
  tr.host_b = host_b;
  tr.pair_count_after = count_after;
  const std::vector<LinkId> candidates =
      census_->find_between_hosts(host_a, host_b);
  if (candidates.empty()) {
    ++stats_.unknown_host_pairs;
    return;
  }
  if (candidates.size() > 1) {
    tr.multilink = true;
    ++stats_.multilink_transitions;
  } else {
    tr.link = candidates.front();
  }
  out.push_back(std::move(tr));
}

void StreamingExtractor::update_pair(TimePoint t, const std::string& from,
                                     const std::string& to, int new_count,
                                     bool from_is_baseline,
                                     std::vector<IsisTransition>& out) {
  const auto key = ordered(from, to);
  PairState& p = pairs_[key];
  int& mine = (from == key.first) ? p.count_ab : p.count_ba;
  mine = new_count;
  const int now = std::min(p.count_ab, p.count_ba);
  if (p.active && !from_is_baseline) {
    while (p.last_min > now) {
      --p.last_min;
      emit_is_transition(t, LinkDirection::kDown, key.first, key.second,
                         p.last_min, out);
    }
    while (p.last_min < now) {
      ++p.last_min;
      emit_is_transition(t, LinkDirection::kUp, key.first, key.second,
                         p.last_min, out);
    }
  } else {
    p.last_min = now;
  }
  // The pair starts emitting once both ends have reported at least once.
  if (!p.active) {
    p.active = initialized_hosts_.contains(to) &&
               (from_is_baseline || initialized_hosts_.contains(from));
  }
}

void StreamingExtractor::feed(const LspRecord& rec,
                              std::vector<IsisTransition>& out) {
  const std::size_t out_before = out.size();
  Result<Lsp> decoded = Lsp::decode(rec.bytes);
  if (!decoded) {
    if (decoded.error().code == ErrorCode::kChecksumMismatch) {
      ++stats_.checksum_failures;
    } else {
      ++stats_.parse_failures;
    }
    isis_metrics().decode_failures.inc();
    return;
  }
  const Lsp& lsp = *decoded;
  ++stats_.lsps_processed;
  isis_metrics().lsps.inc();

  SourceState& src = sources_[lsp.source];
  if (src.initialized && lsp.sequence <= src.sequence) {
    ++stats_.stale_lsps;
    isis_metrics().stale.inc();
    return;
  }
  src.sequence = lsp.sequence;

  // A purge (remaining lifetime zero) withdraws everything the source
  // advertised: process it as an LSP with empty reachability.
  const bool purged = lsp.remaining_lifetime == 0;
  if (purged) ++stats_.purges;

  // Hostname resolution: prefer the dynamic-hostname TLV, fall back to the
  // config-mined mapping.
  std::string hostname = lsp.hostname;
  if (hostname.empty()) {
    hostname = census_->hostname_of(lsp.source).value_or("");
  }
  if (hostname.empty()) {
    // Cannot name this source; its adjacencies are unresolvable.
    ++stats_.unknown_host_pairs;
    return;
  }
  src.hostname = hostname;

  // ---- Diff IS reachability. ---------------------------------------------
  std::map<OsiSystemId, int> new_counts;
  if (!purged) {
    for (const IsReachEntry& e : lsp.is_reach) ++new_counts[e.neighbor];
  }

  const bool first_lsp = !src.initialized;
  // Removed or decreased neighbors.
  for (const auto& [neighbor, old_count] : src.adjacency_count) {
    const auto it = new_counts.find(neighbor);
    const int now = (it == new_counts.end()) ? 0 : it->second;
    if (now < old_count) {
      const std::string nbr_host =
          census_->hostname_of(neighbor).value_or(neighbor.to_string());
      update_pair(rec.received_at, hostname, nbr_host, now, first_lsp, out);
    }
  }
  // Added or increased neighbors.
  for (const auto& [neighbor, now] : new_counts) {
    const auto it = src.adjacency_count.find(neighbor);
    const int before = (it == src.adjacency_count.end()) ? 0 : it->second;
    if (now > before) {
      const std::string nbr_host =
          census_->hostname_of(neighbor).value_or(neighbor.to_string());
      update_pair(rec.received_at, hostname, nbr_host, now, first_lsp, out);
    }
  }
  src.adjacency_count = std::move(new_counts);

  // ---- Diff IP reachability. ---------------------------------------------
  std::vector<Ipv4Prefix> new_prefixes;
  if (!purged) {
    new_prefixes.reserve(lsp.ip_reach.size());
    for (const IpReachEntry& e : lsp.ip_reach) {
      if (e.prefix.length() == 31) new_prefixes.push_back(e.prefix);
    }
    std::sort(new_prefixes.begin(), new_prefixes.end());
  }

  auto emit_ip_transition = [&](Ipv4Prefix prefix, LinkDirection dir) {
    IsisTransition tr;
    tr.time = rec.received_at;
    tr.dir = dir;
    tr.field = ReachabilityField::kIpReach;
    const std::optional<LinkId> link = census_->find_by_subnet(prefix);
    if (!link) {
      ++stats_.unknown_prefixes;
      return;
    }
    tr.link = *link;
    const CensusLink& cl = census_->link(*link);
    tr.host_a = cl.a.host;
    tr.host_b = cl.b.host;
    out.push_back(std::move(tr));
  };

  // Withdrawn prefixes: advertiser count drops; reaching zero is a DOWN.
  for (const Ipv4Prefix& p : src.prefixes) {
    if (!std::binary_search(new_prefixes.begin(), new_prefixes.end(), p)) {
      if (--prefix_advertisers_[p] == 0) {
        emit_ip_transition(p, LinkDirection::kDown);
      }
    }
  }
  // Newly advertised prefixes: count rises; leaving zero is an UP (but the
  // first LSP from a source only sets baselines).
  for (const Ipv4Prefix& p : new_prefixes) {
    if (!std::binary_search(src.prefixes.begin(), src.prefixes.end(), p)) {
      if (prefix_advertisers_[p]++ == 0 && !first_lsp) {
        emit_ip_transition(p, LinkDirection::kUp);
      }
    }
  }
  src.prefixes = std::move(new_prefixes);
  src.initialized = true;
  initialized_hosts_.insert(hostname);
  isis_metrics().transitions.inc(out.size() - out_before);
}

IsisExtraction extract_transitions(const std::vector<LspRecord>& records,
                                   const LinkCensus& census) {
  IsisExtraction out;
  StreamingExtractor extractor(&census);
  std::vector<IsisTransition> emitted;
  for (const LspRecord& rec : records) {
    emitted.clear();
    extractor.feed(rec, emitted);
    for (IsisTransition& tr : emitted) {
      if (tr.field == ReachabilityField::kIsReach) {
        out.is_reach.push_back(std::move(tr));
      } else {
        out.ip_reach.push_back(std::move(tr));
      }
    }
  }
  out.stats = extractor.stats();
  return out;
}

}  // namespace netfail::isis
