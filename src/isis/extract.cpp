#include "src/isis/extract.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

#include "src/isis/pdu.hpp"

namespace netfail::isis {
namespace {

/// Everything remembered about one LSP source between packets.
struct SourceState {
  std::uint32_t sequence = 0;
  std::string hostname;
  std::map<OsiSystemId, int> adjacency_count;  // neighbor -> up adjacencies
  std::vector<Ipv4Prefix> prefixes;            // sorted
  bool initialized = false;                    // first LSP sets the baseline
};

/// Bidirectional adjacency bookkeeping for one unordered host pair.
struct PairState {
  int count_ab = 0;  // adjacencies advertised by the lexically-first host
  int count_ba = 0;
  /// True once both hosts have reported a baseline; from then on changes in
  /// the bidirectional minimum are emitted as transitions.
  bool active = false;
  int last_min = 0;
};

std::pair<std::string, std::string> ordered(std::string a, std::string b) {
  if (b < a) a.swap(b);
  return {std::move(a), std::move(b)};
}

}  // namespace

IsisExtraction extract_transitions(const std::vector<LspRecord>& records,
                                   const LinkCensus& census) {
  IsisExtraction out;
  std::map<OsiSystemId, SourceState> sources;
  std::map<std::pair<std::string, std::string>, PairState> pairs;
  // Hosts whose baseline (first LSP) has been recorded.
  std::set<std::string> initialized_hosts;
  // prefix -> number of routers currently advertising it.
  std::map<Ipv4Prefix, int> prefix_advertisers;

  auto emit_is_transition = [&](TimePoint t, LinkDirection dir,
                                const std::string& host_a,
                                const std::string& host_b, int count_after) {
    IsisTransition tr;
    tr.time = t;
    tr.dir = dir;
    tr.field = ReachabilityField::kIsReach;
    tr.host_a = host_a;
    tr.host_b = host_b;
    tr.pair_count_after = count_after;
    const std::vector<LinkId> candidates =
        census.find_between_hosts(host_a, host_b);
    if (candidates.empty()) {
      ++out.stats.unknown_host_pairs;
      return;
    }
    if (candidates.size() > 1) {
      tr.multilink = true;
      ++out.stats.multilink_transitions;
    } else {
      tr.link = candidates.front();
    }
    out.is_reach.push_back(std::move(tr));
  };

  /// Update the pair's bidirectional state after one direction changed.
  /// `from_is_baseline` marks the reporting source's first LSP: its counts
  /// establish state without producing transitions.
  auto update_pair = [&](TimePoint t, const std::string& from,
                         const std::string& to, int new_count,
                         bool from_is_baseline) {
    const auto key = ordered(from, to);
    PairState& p = pairs[key];
    int& mine = (from == key.first) ? p.count_ab : p.count_ba;
    mine = new_count;
    const int now = std::min(p.count_ab, p.count_ba);
    if (p.active && !from_is_baseline) {
      while (p.last_min > now) {
        --p.last_min;
        emit_is_transition(t, LinkDirection::kDown, key.first, key.second,
                           p.last_min);
      }
      while (p.last_min < now) {
        ++p.last_min;
        emit_is_transition(t, LinkDirection::kUp, key.first, key.second,
                           p.last_min);
      }
    } else {
      p.last_min = now;
    }
    // The pair starts emitting once both ends have reported at least once.
    if (!p.active) {
      p.active = initialized_hosts.contains(to) &&
                 (from_is_baseline || initialized_hosts.contains(from));
    }
  };

  for (const LspRecord& rec : records) {
    Result<Lsp> decoded = Lsp::decode(rec.bytes);
    if (!decoded) {
      if (decoded.error().code == ErrorCode::kChecksumMismatch) {
        ++out.stats.checksum_failures;
      } else {
        ++out.stats.parse_failures;
      }
      continue;
    }
    const Lsp& lsp = *decoded;
    ++out.stats.lsps_processed;

    SourceState& src = sources[lsp.source];
    if (src.initialized && lsp.sequence <= src.sequence) {
      ++out.stats.stale_lsps;
      continue;
    }
    src.sequence = lsp.sequence;

    // A purge (remaining lifetime zero) withdraws everything the source
    // advertised: process it as an LSP with empty reachability.
    const bool purged = lsp.remaining_lifetime == 0;
    if (purged) ++out.stats.purges;

    // Hostname resolution: prefer the dynamic-hostname TLV, fall back to the
    // config-mined mapping.
    std::string hostname = lsp.hostname;
    if (hostname.empty()) {
      hostname = census.hostname_of(lsp.source).value_or("");
    }
    if (hostname.empty()) {
      // Cannot name this source; its adjacencies are unresolvable.
      ++out.stats.unknown_host_pairs;
      continue;
    }
    src.hostname = hostname;

    // ---- Diff IS reachability. ---------------------------------------------
    std::map<OsiSystemId, int> new_counts;
    if (!purged) {
      for (const IsReachEntry& e : lsp.is_reach) ++new_counts[e.neighbor];
    }

    const bool first_lsp = !src.initialized;
    // Removed or decreased neighbors.
    for (const auto& [neighbor, old_count] : src.adjacency_count) {
      const auto it = new_counts.find(neighbor);
      const int now = (it == new_counts.end()) ? 0 : it->second;
      if (now < old_count) {
        const std::string nbr_host =
            census.hostname_of(neighbor).value_or(neighbor.to_string());
        update_pair(rec.received_at, hostname, nbr_host, now, first_lsp);
      }
    }
    // Added or increased neighbors.
    for (const auto& [neighbor, now] : new_counts) {
      const auto it = src.adjacency_count.find(neighbor);
      const int before = (it == src.adjacency_count.end()) ? 0 : it->second;
      if (now > before) {
        const std::string nbr_host =
            census.hostname_of(neighbor).value_or(neighbor.to_string());
        update_pair(rec.received_at, hostname, nbr_host, now, first_lsp);
      }
    }
    src.adjacency_count = std::move(new_counts);

    // ---- Diff IP reachability. ---------------------------------------------
    std::vector<Ipv4Prefix> new_prefixes;
    if (!purged) {
      new_prefixes.reserve(lsp.ip_reach.size());
      for (const IpReachEntry& e : lsp.ip_reach) {
        if (e.prefix.length() == 31) new_prefixes.push_back(e.prefix);
      }
      std::sort(new_prefixes.begin(), new_prefixes.end());
    }

    auto emit_ip_transition = [&](Ipv4Prefix prefix, LinkDirection dir) {
      IsisTransition tr;
      tr.time = rec.received_at;
      tr.dir = dir;
      tr.field = ReachabilityField::kIpReach;
      const std::optional<LinkId> link = census.find_by_subnet(prefix);
      if (!link) {
        ++out.stats.unknown_prefixes;
        return;
      }
      tr.link = *link;
      const CensusLink& cl = census.link(*link);
      tr.host_a = cl.a.host;
      tr.host_b = cl.b.host;
      out.ip_reach.push_back(std::move(tr));
    };

    // Withdrawn prefixes: advertiser count drops; reaching zero is a DOWN.
    for (const Ipv4Prefix& p : src.prefixes) {
      if (!std::binary_search(new_prefixes.begin(), new_prefixes.end(), p)) {
        if (--prefix_advertisers[p] == 0) {
          emit_ip_transition(p, LinkDirection::kDown);
        }
      }
    }
    // Newly advertised prefixes: count rises; leaving zero is an UP (but the
    // first LSP from a source only sets baselines).
    for (const Ipv4Prefix& p : new_prefixes) {
      if (!std::binary_search(src.prefixes.begin(), src.prefixes.end(), p)) {
        if (prefix_advertisers[p]++ == 0 && !first_lsp) {
          emit_ip_transition(p, LinkDirection::kUp);
        }
      }
    }
    src.prefixes = std::move(new_prefixes);
    src.initialized = true;
    initialized_hosts.insert(hostname);
  }
  return out;
}

}  // namespace netfail::isis
