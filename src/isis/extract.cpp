#include "src/isis/extract.hpp"

#include <algorithm>
#include <optional>

#include "src/common/metrics.hpp"
#include "src/isis/pdu.hpp"

namespace netfail::isis {
namespace {

struct IsisMetrics {
  metrics::Counter& lsps = metrics::global().counter("isis.extract.lsps");
  metrics::Counter& decode_failures =
      metrics::global().counter("isis.extract.decode_failures");
  metrics::Counter& stale = metrics::global().counter("isis.extract.stale_lsps");
  metrics::Counter& transitions =
      metrics::global().counter("isis.extract.transitions");
};

// Namespace-scope so the per-LSP hot path carries no static-init guard.
IsisMetrics g_isis_metrics;

IsisMetrics& isis_metrics() { return g_isis_metrics; }

/// Count for `neighbor` in a sorted (neighbor, count) vector; 0 if absent.
int count_of(const std::vector<std::pair<OsiSystemId, int>>& counts,
             const OsiSystemId& neighbor) {
  const auto it = std::lower_bound(
      counts.begin(), counts.end(), neighbor,
      [](const auto& entry, const OsiSystemId& key) { return entry.first < key; });
  return (it != counts.end() && it->first == neighbor) ? it->second : 0;
}

}  // namespace

void StreamingExtractor::emit_is_transition(TimePoint t, LinkDirection dir,
                                            Symbol host_a, Symbol host_b,
                                            int count_after,
                                            std::vector<IsisTransition>& out) {
  IsisTransition tr;
  tr.time = t;
  tr.dir = dir;
  tr.field = ReachabilityField::kIsReach;
  tr.host_a = host_a;
  tr.host_b = host_b;
  tr.pair_count_after = count_after;
  const std::vector<LinkId>& candidates =
      census_->find_between_hosts(host_a, host_b);
  if (candidates.empty()) {
    ++stats_.unknown_host_pairs;
    return;
  }
  if (candidates.size() > 1) {
    tr.multilink = true;
    ++stats_.multilink_transitions;
  } else {
    tr.link = candidates.front();
  }
  out.push_back(tr);
}

void StreamingExtractor::update_pair(TimePoint t, Symbol from, Symbol to,
                                     int new_count, bool from_is_baseline,
                                     std::vector<IsisTransition>& out) {
  // Normalized lexicographically on the underlying hostnames (NOT symbol
  // ids), so emitted (host_a, host_b) ordering matches the string era.
  const auto [first, second] = sym::ordered(from, to);
  PairState& p = pairs_[sym::pair_key(from, to)];
  int& mine = (from == first) ? p.count_ab : p.count_ba;
  mine = new_count;
  const int now = std::min(p.count_ab, p.count_ba);
  if (p.active && !from_is_baseline) {
    while (p.last_min > now) {
      --p.last_min;
      emit_is_transition(t, LinkDirection::kDown, first, second, p.last_min,
                         out);
    }
    while (p.last_min < now) {
      ++p.last_min;
      emit_is_transition(t, LinkDirection::kUp, first, second, p.last_min, out);
    }
  } else {
    p.last_min = now;
  }
  // The pair starts emitting once both ends have reported at least once.
  if (!p.active) {
    p.active = initialized_hosts_.contains(to) &&
               (from_is_baseline || initialized_hosts_.contains(from));
  }
}

void StreamingExtractor::feed(const LspRecord& rec,
                              std::vector<IsisTransition>& out) {
  const std::size_t out_before = out.size();
  if (Status decoded = Lsp::decode_into(rec.bytes, scratch_lsp_); !decoded) {
    if (decoded.error().code == ErrorCode::kChecksumMismatch) {
      ++stats_.checksum_failures;
    } else {
      ++stats_.parse_failures;
    }
    isis_metrics().decode_failures.inc();
    return;
  }
  const Lsp& lsp = scratch_lsp_;
  ++stats_.lsps_processed;
  isis_metrics().lsps.inc();

  SourceState& src = sources_[lsp.source];
  if (src.initialized && lsp.sequence <= src.sequence) {
    ++stats_.stale_lsps;
    isis_metrics().stale.inc();
    return;
  }
  src.sequence = lsp.sequence;

  // A purge (remaining lifetime zero) withdraws everything the source
  // advertised: process it as an LSP with empty reachability.
  const bool purged = lsp.remaining_lifetime == 0;
  if (purged) ++stats_.purges;

  // Hostname resolution: prefer the dynamic-hostname TLV, fall back to the
  // config-mined mapping. Refreshes re-advertise the same hostname, so the
  // cached symbol from the previous LSP usually answers without touching the
  // interner's hash table.
  Symbol hostname;
  if (lsp.hostname.empty()) {
    hostname = census_->hostname_of(lsp.source);
  } else if (src.hostname.valid() && src.hostname == lsp.hostname) {
    hostname = src.hostname;
  } else {
    hostname = Symbol(lsp.hostname);
  }
  if (hostname.empty()) {
    // Cannot name this source; its adjacencies are unresolvable.
    ++stats_.unknown_host_pairs;
    return;
  }
  const bool hostname_changed = !(src.hostname == hostname);
  src.hostname = hostname;

  // ---- Diff IS reachability. ---------------------------------------------
  // (neighbor, count) sorted by neighbor, built in reused scratch storage.
  scratch_counts_.clear();
  if (!purged) {
    for (const IsReachEntry& e : lsp.is_reach) {
      scratch_counts_.emplace_back(e.neighbor, 1);
    }
    std::sort(scratch_counts_.begin(), scratch_counts_.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::size_t w = 0;
    for (std::size_t r = 0; r < scratch_counts_.size(); ++r) {
      if (w > 0 && scratch_counts_[w - 1].first == scratch_counts_[r].first) {
        ++scratch_counts_[w - 1].second;
      } else {
        scratch_counts_[w++] = scratch_counts_[r];
      }
    }
    scratch_counts_.resize(w);
  }

  const bool first_lsp = !src.initialized;
  // Refresh fast path: most LSPs re-advertise an unchanged adjacency set
  // (the protocol refreshes every ~15 min), so an O(n) equality check skips
  // both diff walks and the copy-back in the steady state.
  if (scratch_counts_ != src.adjacency_count) {
    // Removed or decreased neighbors (in sorted-neighbor order, like the old
    // std::map walk, so emission order is unchanged).
    for (const auto& [neighbor, old_count] : src.adjacency_count) {
      const int now = count_of(scratch_counts_, neighbor);
      if (now < old_count) {
        Symbol nbr_host = census_->hostname_of(neighbor);
        if (!nbr_host.valid()) nbr_host = Symbol(neighbor.to_string());
        update_pair(rec.received_at, hostname, nbr_host, now, first_lsp, out);
      }
    }
    // Added or increased neighbors.
    for (const auto& [neighbor, now] : scratch_counts_) {
      const int before = count_of(src.adjacency_count, neighbor);
      if (now > before) {
        Symbol nbr_host = census_->hostname_of(neighbor);
        if (!nbr_host.valid()) nbr_host = Symbol(neighbor.to_string());
        update_pair(rec.received_at, hostname, nbr_host, now, first_lsp, out);
      }
    }
    src.adjacency_count = scratch_counts_;  // copy; reuses src's capacity
  }

  // ---- Diff IP reachability. ---------------------------------------------
  scratch_prefixes_.clear();
  if (!purged) {
    for (const IpReachEntry& e : lsp.ip_reach) {
      if (e.prefix.length() == 31) scratch_prefixes_.push_back(e.prefix);
    }
    std::sort(scratch_prefixes_.begin(), scratch_prefixes_.end());
  }
  const std::vector<Ipv4Prefix>& new_prefixes = scratch_prefixes_;

  auto emit_ip_transition = [&](Ipv4Prefix prefix, LinkDirection dir) {
    IsisTransition tr;
    tr.time = rec.received_at;
    tr.dir = dir;
    tr.field = ReachabilityField::kIpReach;
    const std::optional<LinkId> link = census_->find_by_subnet(prefix);
    if (!link) {
      ++stats_.unknown_prefixes;
      return;
    }
    tr.link = *link;
    const CensusLink& cl = census_->link(*link);
    tr.host_a = cl.a.host;
    tr.host_b = cl.b.host;
    out.push_back(tr);
  };

  // Same refresh fast path as the adjacency diff: identical prefix sets
  // imply both walks are no-ops, so skip them and the copy-back.
  if (new_prefixes != src.prefixes) {
    // Withdrawn prefixes: advertiser count drops; reaching zero is a DOWN.
    for (const Ipv4Prefix& p : src.prefixes) {
      if (!std::binary_search(new_prefixes.begin(), new_prefixes.end(), p)) {
        if (--prefix_advertisers_[p] == 0) {
          emit_ip_transition(p, LinkDirection::kDown);
        }
      }
    }
    // Newly advertised prefixes: count rises; leaving zero is an UP (but the
    // first LSP from a source only sets baselines).
    for (const Ipv4Prefix& p : new_prefixes) {
      if (!std::binary_search(src.prefixes.begin(), src.prefixes.end(), p)) {
        if (prefix_advertisers_[p]++ == 0 && !first_lsp) {
          emit_ip_transition(p, LinkDirection::kUp);
        }
      }
    }
    src.prefixes = new_prefixes;  // copy; reuses src's capacity
  }
  src.initialized = true;
  // The hostname set only ever grows; re-inserting the same symbol on every
  // refresh is a wasted hash probe.
  if (first_lsp || hostname_changed) initialized_hosts_.insert(hostname);
  isis_metrics().transitions.inc(out.size() - out_before);
}

void extract_columns(const std::vector<LspRecord>& records,
                     const LinkCensus& census, EventColumns& out,
                     ExtractionStats& stats) {
  StreamingExtractor extractor(&census);
  std::vector<IsisTransition> emitted;
  for (const LspRecord& rec : records) {
    emitted.clear();
    extractor.feed(rec, emitted);
    for (const IsisTransition& tr : emitted) {
      if (tr.field != ReachabilityField::kIsReach) continue;
      if (!tr.link.valid() || tr.multilink) continue;
      out.push_back(tr.time, tr.link, tr.host_a,
                    tr.dir == LinkDirection::kUp ? EventColumns::kTagUp
                                                 : std::uint8_t{0});
    }
  }
  stats = extractor.stats();
}

IsisExtraction extract_transitions(const std::vector<LspRecord>& records,
                                   const LinkCensus& census) {
  IsisExtraction out;
  StreamingExtractor extractor(&census);
  std::vector<IsisTransition> emitted;
  for (const LspRecord& rec : records) {
    emitted.clear();
    extractor.feed(rec, emitted);
    for (IsisTransition& tr : emitted) {
      if (tr.field == ReachabilityField::kIsReach) {
        out.is_reach.push_back(std::move(tr));
      } else {
        out.ip_reach.push_back(std::move(tr));
      }
    }
  }
  out.stats = extractor.stats();
  return out;
}

}  // namespace netfail::isis
