// Sequence-number PDUs: CSNP and PSNP (ISO 10589 sect. 9.9-9.10).
//
// SNPs are how IS-IS keeps link-state databases synchronized: a CSNP
// describes the sender's whole database as (LSP ID, sequence, lifetime,
// checksum) summaries; a PSNP acknowledges or requests specific LSPs. The
// passive listener in the paper relies on its neighbor's periodic CSNPs to
// detect LSPs it never received; we implement both PDUs so the substrate's
// database-synchronization story is complete and testable.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "src/common/result.hpp"
#include "src/topology/osi.hpp"

namespace netfail::isis {

inline constexpr std::uint8_t kPduTypeCsnpL2 = 25;
inline constexpr std::uint8_t kPduTypePsnpL2 = 27;
inline constexpr std::uint8_t kTlvLspEntries = 9;

/// An 8-byte LSP identifier: system id + pseudonode + fragment.
struct LspId {
  OsiSystemId system;
  std::uint8_t pseudonode = 0;
  std::uint8_t fragment = 0;

  auto operator<=>(const LspId&) const = default;
  std::string to_string() const;
};

/// One summary in TLV 9.
struct LspEntry {
  std::uint16_t remaining_lifetime = 0;
  LspId id;
  std::uint32_t sequence = 0;
  std::uint16_t checksum = 0;

  auto operator<=>(const LspEntry&) const = default;
};

/// Complete sequence-number PDU: summarizes the database slice between
/// `start` and `end` (inclusive).
struct Csnp {
  OsiSystemId source;
  LspId start;  // default: all-zero
  LspId end;    // default-constructed Csnp sets this to all-ones
  std::vector<LspEntry> entries;

  Csnp();

  std::vector<std::uint8_t> encode() const;
  static Result<Csnp> decode(std::span<const std::uint8_t> data);

  bool operator==(const Csnp&) const = default;
};

/// Partial sequence-number PDU: acknowledges / requests specific LSPs.
struct Psnp {
  OsiSystemId source;
  std::vector<LspEntry> entries;

  std::vector<std::uint8_t> encode() const;
  static Result<Psnp> decode(std::span<const std::uint8_t> data);

  bool operator==(const Psnp&) const = default;
};

}  // namespace netfail::isis
