#include "src/isis/bytes.hpp"

namespace netfail {

Result<std::uint8_t> ByteReader::u8() {
  if (Status s = need(1); !s) return s.error();
  return data_[pos_++];
}

Result<std::uint16_t> ByteReader::u16() {
  if (Status s = need(2); !s) return s.error();
  const std::uint16_t v = static_cast<std::uint16_t>(
      (std::uint16_t{data_[pos_]} << 8) | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

Result<std::uint32_t> ByteReader::u24() {
  if (Status s = need(3); !s) return s.error();
  const std::uint32_t v = (std::uint32_t{data_[pos_]} << 16) |
                          (std::uint32_t{data_[pos_ + 1]} << 8) |
                          data_[pos_ + 2];
  pos_ += 3;
  return v;
}

Result<std::uint32_t> ByteReader::u32() {
  if (Status s = need(4); !s) return s.error();
  const std::uint32_t v = (std::uint32_t{data_[pos_]} << 24) |
                          (std::uint32_t{data_[pos_ + 1]} << 16) |
                          (std::uint32_t{data_[pos_ + 2]} << 8) |
                          data_[pos_ + 3];
  pos_ += 4;
  return v;
}

Result<std::vector<std::uint8_t>> ByteReader::bytes(std::size_t n) {
  if (Status s = need(n); !s) return s.error();
  std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

Result<std::span<const std::uint8_t>> ByteReader::view(std::size_t n) {
  if (Status s = need(n); !s) return s.error();
  std::span<const std::uint8_t> out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

Status ByteReader::skip(std::size_t n) {
  if (Status s = need(n); !s) return s;
  pos_ += n;
  return Status::ok_status();
}

Result<std::string> ByteReader::string(std::size_t n) {
  if (Status s = need(n); !s) return s.error();
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return out;
}

Result<ByteReader> ByteReader::sub(std::size_t n) {
  if (Status s = need(n); !s) return s.error();
  ByteReader r(data_.subspan(pos_, n));
  pos_ += n;
  return r;
}

}  // namespace netfail
