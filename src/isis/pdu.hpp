// IS-IS PDU structures and binary codec (ISO 10589 + RFC 5305 extended
// reachability TLVs + RFC 1195 dynamic hostname).
//
// The paper's listener consumes exactly four LSP fields (Table 1): LSP ID,
// Host Name (TLV 137), Extended IS Reachability (TLV 22) and Extended IP
// Reachability (TLV 135). We encode real binary LSPs with valid Fletcher
// checksums and parse them back, so the analysis pipeline works from bytes
// the same way the PyRT-based listener did. Point-to-point hellos
// (RFC 5303 three-way handshake) are included for the adjacency FSM.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/common/result.hpp"
#include "src/topology/ipv4.hpp"
#include "src/topology/osi.hpp"

namespace netfail::isis {

// PDU type codes (low 5 bits of the type octet).
inline constexpr std::uint8_t kPduTypeP2PHello = 17;
inline constexpr std::uint8_t kPduTypeLspL2 = 20;

// TLV codes.
inline constexpr std::uint8_t kTlvExtendedIsReach = 22;
inline constexpr std::uint8_t kTlvExtendedIpReach = 135;
inline constexpr std::uint8_t kTlvDynamicHostname = 137;
inline constexpr std::uint8_t kTlvThreeWayAdjacency = 240;

/// One neighbor entry in TLV 22. `pseudonode` is 0 for point-to-point
/// adjacencies (all CENIC backbone links are point-to-point).
struct IsReachEntry {
  OsiSystemId neighbor;
  std::uint8_t pseudonode = 0;
  std::uint32_t metric = 0;  // 24-bit wide metric

  auto operator<=>(const IsReachEntry&) const = default;
};

/// One prefix entry in TLV 135.
struct IpReachEntry {
  std::uint32_t metric = 0;
  Ipv4Prefix prefix;

  auto operator<=>(const IpReachEntry&) const = default;
};

/// A level-2 link-state PDU.
struct Lsp {
  OsiSystemId source;
  std::uint8_t pseudonode = 0;
  std::uint8_t fragment = 0;
  std::uint32_t sequence = 1;
  std::uint16_t remaining_lifetime = 1199;
  std::string hostname;                  // TLV 137, may be empty
  std::vector<IsReachEntry> is_reach;    // TLV 22 (possibly several)
  std::vector<IpReachEntry> ip_reach;    // TLV 135 (possibly several)

  /// "1921.6800.1007.00-00" — LSP ID rendering used in logs.
  std::string lsp_id_string() const;

  std::vector<std::uint8_t> encode() const;
  /// Parses and verifies the Fletcher checksum.
  static Result<Lsp> decode(std::span<const std::uint8_t> data);
  /// Allocation-lean decode into an existing Lsp: `out` is reset and its
  /// hostname/is_reach/ip_reach storage reused, so a caller decoding a
  /// stream through one scratch Lsp allocates O(1) amortized per packet.
  static Status decode_into(std::span<const std::uint8_t> data, Lsp& out);

  bool operator==(const Lsp&) const = default;
};

/// RFC 5303 three-way adjacency state, as carried in TLV 240.
enum class ThreeWayState : std::uint8_t { kUp = 0, kInitializing = 1, kDown = 2 };

/// A point-to-point IIH (hello).
struct PointToPointHello {
  OsiSystemId source;
  std::uint16_t holding_time = 30;
  std::uint8_t circuit_id = 1;
  ThreeWayState three_way_state = ThreeWayState::kDown;
  /// Valid when the sender has seen the neighbor's hello (init or up).
  bool has_neighbor = false;
  OsiSystemId neighbor;

  std::vector<std::uint8_t> encode() const;
  static Result<PointToPointHello> decode(std::span<const std::uint8_t> data);

  bool operator==(const PointToPointHello&) const = default;
};

/// Peek at the PDU type of a raw IS-IS packet.
Result<std::uint8_t> pdu_type(std::span<const std::uint8_t> data);

}  // namespace netfail::isis
