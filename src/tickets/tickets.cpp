#include "src/tickets/tickets.hpp"

#include <algorithm>

#include "src/common/assert.hpp"

namespace netfail {

TicketId TicketStore::file(std::string link_name, TimeRange outage,
                           std::string summary) {
  NETFAIL_ASSERT(!outage.empty(), "ticket with empty outage window");
  const TicketId id{static_cast<std::uint32_t>(tickets_.size())};
  tickets_.push_back(
      TroubleTicket{id, std::move(link_name), outage, std::move(summary)});
  return id;
}

std::vector<TicketId> TicketStore::find(const std::string& link_name,
                                        TimeRange window) const {
  std::vector<TicketId> out;
  for (const TroubleTicket& t : tickets_) {
    if (t.link_name == link_name && t.outage.overlaps(window)) {
      out.push_back(t.id);
    }
  }
  return out;
}

bool TicketStore::corroborates(const std::string& link_name, TimeRange failure,
                               double min_overlap_fraction) const {
  if (failure.empty()) return false;
  for (const TroubleTicket& t : tickets_) {
    if (t.link_name != link_name) continue;
    const TimePoint lo = std::max(t.outage.begin, failure.begin);
    const TimePoint hi = std::min(t.outage.end, failure.end);
    if (lo >= hi) continue;
    const double overlap = (hi - lo).seconds_f();
    if (overlap >= min_overlap_fraction * failure.duration().seconds_f()) {
      return true;
    }
  }
  return false;
}

const TroubleTicket& TicketStore::ticket(TicketId id) const {
  NETFAIL_ASSERT(id.valid() && id.index() < tickets_.size(), "bad ticket id");
  return tickets_[id.index()];
}

}  // namespace netfail
