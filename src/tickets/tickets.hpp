// Trouble tickets: the operator-side record of significant network events.
//
// The paper manually verified every syslog failure longer than 24 hours
// against CENIC's trouble tickets (sect. 4.2) — long outages are reliably
// ticketed, so a multi-day "failure" with no ticket is a syslog artifact.
// The simulator files a ticket for every genuine long outage; the sanitizer
// queries this store to reproduce the verification step mechanically.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/common/ids.hpp"
#include "src/common/time.hpp"

namespace netfail {

struct TroubleTicket {
  TicketId id;
  std::string link_name;   // canonical census link name
  TimeRange outage;        // the period the ticket documents
  std::string summary;     // free text, e.g. "fiber cut near Fresno"
};

class TicketStore {
 public:
  TicketId file(std::string link_name, TimeRange outage, std::string summary);

  const std::vector<TroubleTicket>& tickets() const { return tickets_; }
  std::size_t size() const { return tickets_.size(); }

  /// Tickets on `link_name` whose outage window overlaps `window`.
  std::vector<TicketId> find(const std::string& link_name,
                             TimeRange window) const;

  /// The verification question the paper's authors asked by hand: does any
  /// ticket corroborate (substantially overlap) this long failure? A ticket
  /// corroborates when the overlap covers at least `min_overlap_fraction`
  /// of the failure.
  bool corroborates(const std::string& link_name, TimeRange failure,
                    double min_overlap_fraction = 0.5) const;

  const TroubleTicket& ticket(TicketId id) const;

 private:
  std::vector<TroubleTicket> tickets_;
};

}  // namespace netfail
