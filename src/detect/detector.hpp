// detect::LinkDetector — the online anomaly detection stage of the stream
// engine (ROADMAP item 4; cf. "Finding Needles in the Haystack" for the
// template-frequency idea).
//
// Three detectors run per link, all O(1) state per (link, template) and
// strictly deterministic (simulated clocks only, no ambient entropy — the
// repo linter's determinism roster covers src/detect):
//
//   hard-down     An IS-IS adjacency DOWN transition is near-unambiguous
//                 evidence of a real failure (the paper's premise); alert
//                 immediately, rate-limited per link by `alert_cooldown`.
//
//   flap-cusum    A one-sided CUSUM over syslog adjacency-DOWN inter-
//                 arrival gaps: each gap contributes 1 - gap/mean - k
//                 (positive when gaps run shorter than the EWMA mean), the
//                 statistic clamps at zero and alerts on crossing
//                 `cusum_threshold`. Catches anomalous failure clustering —
//                 including during listener gaps, when the IS-IS stream is
//                 blind.
//
//   template-drift  Per-(link, template) message counts over tumbling
//                 `drift_window`s of arrival time, where a template is the
//                 shape of the tokenized syslog message (type x direction),
//                 interned once via netfail::sym at construction. A window
//                 count far above its EWMA baseline flags message-pattern
//                 drift. Counts live in u64-keyed maps (lint: no string
//                 keys on hot paths); window-close candidates are sorted by
//                 (link, lexicographic template) so the alert stream is
//                 byte-identical run to run.
//
// All alerts land in the AlertSink, which the StreamEngine checkpoint
// deep-copies along with the detector state.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/events.hpp"
#include "src/common/ids.hpp"
#include "src/common/sym.hpp"
#include "src/common/time.hpp"
#include "src/detect/alert.hpp"
#include "src/syslog/extract.hpp"

namespace netfail::svc {
class EngineCodec;  // durable snapshot serializer (src/svc)
}  // namespace netfail::svc

namespace netfail::detect {

struct DetectorOptions {
  /// Off by default: the engine constructs the detector unconditionally and
  /// every observe_*() is a single branch when disabled.
  bool enabled = false;

  // -- hard-down (IS-IS) -------------------------------------------------------
  bool alert_on_isis_down = true;
  /// Minimum spacing between same-kind alerts on one link.
  Duration alert_cooldown = Duration::minutes(5);

  // -- flap-cusum (syslog adjacency DOWNs) -------------------------------------
  /// EWMA weight for the per-link mean inter-DOWN gap.
  double ewma_alpha = 0.3;
  /// Alert when the CUSUM statistic reaches this value.
  double cusum_threshold = 3.0;
  /// Per-observation slack (the classic CUSUM drift term k): gaps must be
  /// at least this fraction shorter than the mean to accumulate.
  double cusum_drift = 0.25;
  /// The EWMA mean gap never falls below this (a burst must still beat a
  /// sane floor) and single huge gaps feed in capped at `gap_cap`.
  Duration baseline_floor = Duration::seconds(30);
  Duration gap_cap = Duration::hours(6);

  // -- template-frequency drift (all tracked syslog templates) -----------------
  /// Tumbling window length, on arrival time.
  Duration drift_window = Duration::minutes(10);
  /// A window fires when count >= drift_min_count and
  /// count >= drift_ratio * (baseline + 1).
  double drift_ratio = 4.0;
  std::uint32_t drift_min_count = 6;
  /// EWMA weight for the per-(link, template) baseline window count.
  double drift_alpha = 0.2;
};

struct DetectorCounters {
  std::uint64_t syslog_observed = 0;
  std::uint64_t isis_observed = 0;
  std::uint64_t windows_closed = 0;
};

class LinkDetector {
 public:
  explicit LinkDetector(DetectorOptions options = {});

  // Copyable by design: a stream Checkpoint is a copy of the detector.

  bool enabled() const { return options_.enabled; }
  const DetectorOptions& options() const { return options_; }

  /// Every syslog transition the extractor resolves (adjacency AND media
  /// classes — the drift detector counts all tracked templates; the CUSUM
  /// uses only adjacency DOWNs). `arrival` must be nondecreasing across
  /// calls (EventMux order); it drives the drift windows.
  void observe_syslog(const syslog::SyslogTransition& tr, TimePoint arrival);

  /// Every link-resolved IS-IS IS-reach transition (the engine's tracker
  /// filter).
  void observe_isis(LinkId link, TimePoint time, LinkDirection dir);

  /// End of stream: close the final drift window. Idempotent.
  void finish();

  AlertSink& sink() { return sink_; }
  const AlertSink& sink() const { return sink_; }
  std::uint64_t alerts_emitted() const { return sink_.size(); }
  const DetectorCounters& counters() const { return counters_; }

 private:
  friend class netfail::svc::EngineCodec;

  struct LinkState {
    bool has_last_down = false;
    TimePoint last_down;
    double mean_gap_s = 0.0;  // 0 = not yet initialized
    double cusum = 0.0;
    bool has_hard_alert = false;
    TimePoint last_hard_alert;
    bool has_cusum_alert = false;
    TimePoint last_cusum_alert;
  };

  /// Per-(link, template) drift state. Cells persist across windows — the
  /// current window resets `count` in place rather than rebuilding a map,
  /// so the steady path allocates only on the first sighting of a pair.
  struct DriftCell {
    std::uint32_t count = 0;   // in the currently open window
    TimePoint last_event;      // message time of the newest contribution
    double ewma = 0.0;         // baseline window count
    std::int64_t ewma_window = 0;  // window the EWMA was last updated in
  };

  void observe_adjacency_down(LinkId link, TimePoint time);
  void roll_window_to(std::int64_t idx);
  void close_window();

  static std::uint64_t cell_key(LinkId link, Symbol tmpl) {
    return (static_cast<std::uint64_t>(link.value()) << 32) | tmpl.value();
  }

  DetectorOptions options_;
  DetectorCounters counters_;
  AlertSink sink_;
  /// Template symbols by (MessageType, LinkDirection), interned once here
  /// so the per-event path never touches the intern table.
  Symbol templates_[3][2];
  std::unordered_map<LinkId, LinkState> links_;
  std::unordered_map<std::uint64_t, DriftCell> cells_;
  /// Keys with a nonzero count in the open window (insertion order); lets
  /// close_window() touch only active cells and never reallocate.
  std::vector<std::uint64_t> active_;
  std::int64_t window_idx_ = -1;  // -1 = no window open yet
  /// Window-close candidates, reused across windows.
  struct Candidate {
    LinkId link;
    Symbol tmpl;
    TimePoint time;
    double ratio = 0.0;
  };
  std::vector<Candidate> scratch_;
  bool finished_ = false;
};

}  // namespace netfail::detect
