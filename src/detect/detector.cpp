#include "src/detect/detector.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/assert.hpp"
#include "src/common/metrics.hpp"
#include "src/syslog/message.hpp"

namespace netfail::detect {
namespace {

struct DetectMetrics {
  metrics::Counter& windows =
      metrics::global().counter("detect.windows_closed");
};

// Namespace-scope so the per-window path carries no static-init guard.
DetectMetrics g_detect_metrics;

int type_index(syslog::MessageType t) {
  switch (t) {
    case syslog::MessageType::kIsisAdjChange: return 0;
    case syslog::MessageType::kLinkUpDown: return 1;
    case syslog::MessageType::kLineProtoUpDown: return 2;
  }
  return 0;
}

int dir_index(LinkDirection d) { return d == LinkDirection::kDown ? 0 : 1; }

/// Decay windows with no observations: the EWMA sees `gap` zero-count
/// windows between updates. Beyond a handful the baseline is effectively
/// cold again, so skip the loop entirely.
double decay_baseline(double ewma, std::int64_t gap, double alpha) {
  if (gap >= 16) return 0.0;
  for (std::int64_t i = 0; i < gap; ++i) ewma *= (1.0 - alpha);
  return ewma;
}

}  // namespace

LinkDetector::LinkDetector(DetectorOptions options) : options_(options) {
  // The six template shapes the tokenizer can produce: message type x
  // direction. Interned here, once, so observe_syslog never interns.
  templates_[0][0] = Symbol("ADJCHANGE/down");
  templates_[0][1] = Symbol("ADJCHANGE/up");
  templates_[1][0] = Symbol("LINK/down");
  templates_[1][1] = Symbol("LINK/up");
  templates_[2][0] = Symbol("LINEPROTO/down");
  templates_[2][1] = Symbol("LINEPROTO/up");
}

void LinkDetector::observe_syslog(const syslog::SyslogTransition& tr,
                                  TimePoint arrival) {
  if (!options_.enabled) return;
  NETFAIL_ASSERT(!finished_, "observe_syslog after finish()");
  if (!tr.link.valid()) return;
  ++counters_.syslog_observed;

  // ---- template-frequency drift ---------------------------------------------
  const std::int64_t idx =
      arrival.unix_millis() / options_.drift_window.total_millis();
  if (idx != window_idx_) roll_window_to(idx);
  const std::uint64_t key =
      cell_key(tr.link, templates_[type_index(tr.type)][dir_index(tr.dir)]);
  DriftCell& cell = cells_[key];
  if (cell.count == 0) active_.push_back(key);
  ++cell.count;
  cell.last_event = tr.time;

  // ---- flap CUSUM over adjacency DOWN gaps ----------------------------------
  if (tr.cls == syslog::MessageClass::kIsisAdjacency &&
      tr.dir == LinkDirection::kDown) {
    observe_adjacency_down(tr.link, tr.time);
  }
}

void LinkDetector::observe_adjacency_down(LinkId link, TimePoint time) {
  LinkState& st = links_[link];
  if (st.has_last_down) {
    // Reordered timestamps (router clock skew) clamp to a zero gap — the
    // most surprising value, which is the right reading of two DOWNs with
    // inverted timestamps.
    const double gap_s = std::max(0.0, (time - st.last_down).seconds_f());
    if (st.mean_gap_s <= 0.0) {
      st.mean_gap_s =
          std::max(options_.baseline_floor.seconds_f(),
                   std::min(gap_s, options_.gap_cap.seconds_f()));
    } else {
      const double surprise =
          1.0 - gap_s / st.mean_gap_s - options_.cusum_drift;
      st.cusum = std::max(0.0, st.cusum + surprise);
      if (st.cusum >= options_.cusum_threshold &&
          (!st.has_cusum_alert ||
           time - st.last_cusum_alert >= options_.alert_cooldown)) {
        sink_.emit({link, time, AlertKind::kFlapCusum, st.cusum, Symbol()});
        st.has_cusum_alert = true;
        st.last_cusum_alert = time;
        st.cusum = 0.0;  // re-arm
      }
      const double capped = std::min(gap_s, options_.gap_cap.seconds_f());
      st.mean_gap_s =
          std::max(options_.baseline_floor.seconds_f(),
                   (1.0 - options_.ewma_alpha) * st.mean_gap_s +
                       options_.ewma_alpha * capped);
    }
  }
  st.has_last_down = true;
  st.last_down = time;
}

void LinkDetector::observe_isis(LinkId link, TimePoint time,
                                LinkDirection dir) {
  if (!options_.enabled || !options_.alert_on_isis_down) return;
  NETFAIL_ASSERT(!finished_, "observe_isis after finish()");
  ++counters_.isis_observed;
  if (dir != LinkDirection::kDown) return;
  LinkState& st = links_[link];
  if (st.has_hard_alert && time - st.last_hard_alert < options_.alert_cooldown) {
    return;
  }
  sink_.emit({link, time, AlertKind::kHardDown, 0.0, Symbol()});
  st.has_hard_alert = true;
  st.last_hard_alert = time;
}

void LinkDetector::roll_window_to(std::int64_t idx) {
  if (window_idx_ >= 0) close_window();
  window_idx_ = idx;
}

void LinkDetector::close_window() {
  ++counters_.windows_closed;
  g_detect_metrics.windows.inc();
  scratch_.clear();
  for (const std::uint64_t key : active_) {
    DriftCell& cell = cells_.find(key)->second;
    // Lazily account for the zero-count windows since this key last fired.
    const std::int64_t gap = window_idx_ - cell.ewma_window - 1;
    if (gap > 0) {
      cell.ewma = decay_baseline(cell.ewma, gap, options_.drift_alpha);
    }
    const double ratio = static_cast<double>(cell.count) / (cell.ewma + 1.0);
    if (cell.count >= options_.drift_min_count &&
        ratio >= options_.drift_ratio) {
      scratch_.push_back({LinkId(static_cast<std::uint32_t>(key >> 32)),
                          Symbol::from_id(static_cast<std::uint32_t>(key)),
                          cell.last_event, ratio});
    }
    cell.ewma = (1.0 - options_.drift_alpha) * cell.ewma +
                options_.drift_alpha * static_cast<double>(cell.count);
    cell.ewma_window = window_idx_;
    cell.count = 0;
  }
  // `active_` follows arrival order, which can vary with the transport;
  // canonicalize before emission so the alert stream is byte-identical run
  // to run.
  std::sort(scratch_.begin(), scratch_.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.link != b.link) return a.link < b.link;
              return sym::lex_less(a.tmpl, b.tmpl);
            });
  for (const Candidate& c : scratch_) {
    sink_.emit({c.link, c.time, AlertKind::kTemplateDrift, c.ratio, c.tmpl});
  }
  active_.clear();
}

void LinkDetector::finish() {
  if (finished_) return;
  if (options_.enabled && window_idx_ >= 0) close_window();
  finished_ = true;
}

}  // namespace netfail::detect
