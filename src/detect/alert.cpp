#include "src/detect/alert.hpp"

#include "src/common/metrics.hpp"

namespace netfail::detect {
namespace {

struct AlertMetrics {
  metrics::Counter& total = metrics::global().counter("detect.alerts.total");
  metrics::Counter& hard_down =
      metrics::global().counter("detect.alerts.hard_down");
  metrics::Counter& flap_cusum =
      metrics::global().counter("detect.alerts.flap_cusum");
  metrics::Counter& template_drift =
      metrics::global().counter("detect.alerts.template_drift");
};

// Namespace-scope so the per-alert path carries no static-init guard.
AlertMetrics g_alert_metrics;

metrics::Counter& kind_counter(AlertKind k) {
  switch (k) {
    case AlertKind::kHardDown: return g_alert_metrics.hard_down;
    case AlertKind::kFlapCusum: return g_alert_metrics.flap_cusum;
    case AlertKind::kTemplateDrift: return g_alert_metrics.template_drift;
  }
  return g_alert_metrics.total;
}

}  // namespace

AlertSink::AlertSink(const AlertSink& other) : on_alert(other.on_alert) {
  sync::MutexLock lock(other.mu_);
  alerts_ = other.alerts_;
}

AlertSink& AlertSink::operator=(const AlertSink& other) {
  if (this == &other) return *this;
  std::vector<LinkAlert> copied;
  {
    sync::MutexLock lock(other.mu_);
    copied = other.alerts_;
  }
  on_alert = other.on_alert;
  sync::MutexLock lock(mu_);
  alerts_ = std::move(copied);
  return *this;
}

void AlertSink::emit(const LinkAlert& alert) {
  {
    sync::MutexLock lock(mu_);
    alerts_.push_back(alert);
  }
  g_alert_metrics.total.inc();
  kind_counter(alert.kind).inc();
  if (on_alert) on_alert(alert);
}

std::uint64_t AlertSink::size() const {
  sync::MutexLock lock(mu_);
  return alerts_.size();
}

std::vector<LinkAlert> AlertSink::snapshot() const {
  sync::MutexLock lock(mu_);
  return alerts_;
}

}  // namespace netfail::detect
