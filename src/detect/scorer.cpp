#include "src/detect/scorer.hpp"

#include <algorithm>
#include <unordered_map>

namespace netfail::detect {
namespace {

/// Per-link alert index: times sorted ascending, parallel matched flags
/// shared with the caller's flag vector via indices.
struct LinkAlerts {
  std::vector<std::size_t> order;  // indices into `alerts`, sorted by time
};

/// First alert index (into `alerts`) with time in [begin, end], or npos.
constexpr std::size_t kNone = static_cast<std::size_t>(-1);

}  // namespace

ScoreReport score_alerts(const std::vector<LinkAlert>& alerts,
                         const sim::GroundTruth& truth,
                         const LinkCensus& census, const TicketStore& tickets,
                         ScorerOptions options) {
  ScoreReport r;
  r.alerts_total = alerts.size();

  std::unordered_map<LinkId, LinkAlerts> by_link;
  for (std::size_t i = 0; i < alerts.size(); ++i) {
    switch (alerts[i].kind) {
      case AlertKind::kHardDown: ++r.alerts_hard_down; break;
      case AlertKind::kFlapCusum: ++r.alerts_flap_cusum; break;
      case AlertKind::kTemplateDrift: ++r.alerts_template_drift; break;
    }
    by_link[alerts[i].link].order.push_back(i);
  }
  for (auto& [link, la] : by_link) {
    std::sort(la.order.begin(), la.order.end(),
              [&](std::size_t a, std::size_t b) {
                if (alerts[a].time != alerts[b].time) {
                  return alerts[a].time < alerts[b].time;
                }
                return a < b;  // emission order for equal times
              });
  }
  std::vector<bool> matched(alerts.size(), false);

  /// Mark every alert on `link` inside [begin, end] matched; return the
  /// earliest one's time via `first` (kNone when none).
  const auto match_window = [&](LinkId link, TimePoint begin, TimePoint end,
                                std::size_t& first) {
    first = kNone;
    const auto it = by_link.find(link);
    if (it == by_link.end()) return;
    const std::vector<std::size_t>& order = it->second.order;
    // Binary search the first alert at or after `begin`.
    std::size_t lo = 0, hi = order.size();
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (alerts[order[mid]].time < begin) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    for (std::size_t i = lo; i < order.size(); ++i) {
      const std::size_t idx = order[i];
      if (alerts[idx].time > end) break;
      matched[idx] = true;
      if (first == kNone) first = idx;
    }
  };

  std::vector<Duration> leads;
  for (const sim::TrueFailure& f : truth.failures()) {
    const TimeRange span =
        f.adjacency_down.empty() ? f.media_down : f.adjacency_down;
    if (span.empty()) continue;  // clamped out of the study period
    const std::optional<LinkId> link = census.find_by_name(f.link_name);
    if (!link) {
      ++r.unresolved_links;
      continue;
    }
    std::size_t first = kNone;
    match_window(*link, span.begin - options.lead_window,
                 span.end + options.grace, first);

    // Recall side: hard failures only.
    const bool hard = (f.cls == sim::FailureClass::kMediaFailure ||
                       f.cls == sim::FailureClass::kProtocolFailure) &&
                      !f.adjacency_down.empty();
    if (!hard) continue;
    if (options.exclude_unobservable &&
        truth.listener_gaps().overlaps(f.adjacency_down)) {
      ++r.failures_excluded;
      continue;
    }
    ++r.failures_considered;
    const bool detected = first != kNone;
    if (detected) ++r.failures_detected;

    const auto slice = [&](SliceScore& s) {
      ++s.considered;
      if (detected) ++s.detected;
    };
    if (f.cls == sim::FailureClass::kMediaFailure) slice(r.media);
    if (f.cls == sim::FailureClass::kProtocolFailure) slice(r.protocol);
    if (f.in_flap_episode) slice(r.flapping);
    if (f.ticketed) {
      slice(r.ticketed);
      if (detected && tickets.corroborates(f.link_name, f.adjacency_down)) {
        ++r.tickets_corroborated;
      }
    }
    if (detected) {
      const Duration lead =
          std::max(Duration::millis(0), span.end - alerts[first].time);
      leads.push_back(lead);
      r.lead_total += lead;
    }
  }
  r.lead_samples = leads.size();
  if (!leads.empty()) {
    std::sort(leads.begin(), leads.end());
    r.lead_median = leads[leads.size() / 2];
  }
  for (const bool m : matched) {
    if (m) ++r.alerts_matched;
  }
  return r;
}

}  // namespace netfail::detect
