// detect::Scorer — precision / recall / lead-time of the online alert
// stream against the simulator's injected ground truth.
//
// Join semantics (DESIGN.md §12):
//
//   - An alert is MATCHED when any injected incident on its link (any
//     class, pseudo-failures and media blips included — the wire event did
//     happen) has a window [onset - lead_window, recovery + grace]
//     containing the alert time. Precision = matched / total alerts.
//
//   - The recall denominator is the HARD failures only (media + protocol,
//     non-empty adjacency_down). A hard failure is DETECTED when any alert
//     on its link falls in its window; the lead time of a detection is
//     recovery - first alert (how far ahead of the batch pipeline, which
//     confirms a failure only at the closing UP). Failures whose adjacency
//     outage overlaps a listener gap are excluded from the denominator when
//     `exclude_unobservable` is set, mirroring the batch sanitizer's
//     remove_listener_gap_failures step.
//
//   - Ground truth names links by topology id; alerts carry census link
//     ids. The join goes through the canonical link name, exactly like the
//     ticket store.
//
// The report is plain numbers; analysis::render_detection_scores() renders
// the table. Scoring is deterministic: same alert stream, same report,
// byte for byte.
#pragma once

#include <cstdint>
#include <vector>

#include "src/config/census.hpp"
#include "src/detect/alert.hpp"
#include "src/sim/ground_truth.hpp"
#include "src/tickets/tickets.hpp"

namespace netfail::detect {

struct ScorerOptions {
  /// An alert may precede the failure onset by up to this much and still
  /// count (early warning from flap/drift detectors).
  Duration lead_window = Duration::minutes(15);
  /// An alert may trail the recovery by up to this much (post-recovery
  /// resets, window-close drift alerts).
  Duration grace = Duration::seconds(60);
  /// Drop hard failures whose adjacency outage overlaps a listener gap
  /// from the recall denominator (the IS-IS stream is blind there).
  bool exclude_unobservable = true;
};

/// considered/detected pair for one slice of the failure population.
struct SliceScore {
  std::uint64_t considered = 0;
  std::uint64_t detected = 0;
};

struct ScoreReport {
  // Alert side.
  std::uint64_t alerts_total = 0;
  std::uint64_t alerts_matched = 0;
  std::uint64_t alerts_hard_down = 0;
  std::uint64_t alerts_flap_cusum = 0;
  std::uint64_t alerts_template_drift = 0;

  // Failure side (hard failures only).
  std::uint64_t failures_considered = 0;
  std::uint64_t failures_detected = 0;
  std::uint64_t failures_excluded = 0;   // listener-gap overlap
  std::uint64_t unresolved_links = 0;    // truth link name absent from census

  SliceScore media;      // FailureClass::kMediaFailure
  SliceScore protocol;   // FailureClass::kProtocolFailure
  SliceScore flapping;   // in_flap_episode
  SliceScore ticketed;   // ticketed long outages
  /// Detected ticketed failures whose outage the ticket store corroborates.
  std::uint64_t tickets_corroborated = 0;

  // Lead time over detected failures: recovery - first matching alert,
  // clamped at zero.
  Duration lead_total;
  Duration lead_median;
  std::uint64_t lead_samples = 0;

  double precision() const {
    return alerts_total == 0
               ? 1.0
               : static_cast<double>(alerts_matched) /
                     static_cast<double>(alerts_total);
  }
  double recall() const {
    return failures_considered == 0
               ? 1.0
               : static_cast<double>(failures_detected) /
                     static_cast<double>(failures_considered);
  }
  Duration lead_mean() const {
    return lead_samples == 0
               ? Duration::millis(0)
               : Duration::millis(lead_total.total_millis() /
                                  static_cast<std::int64_t>(lead_samples));
  }
};

ScoreReport score_alerts(const std::vector<LinkAlert>& alerts,
                         const sim::GroundTruth& truth,
                         const LinkCensus& census, const TicketStore& tickets,
                         ScorerOptions options = {});

}  // namespace netfail::detect
