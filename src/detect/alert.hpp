// detect::LinkAlert / detect::AlertSink — the output side of the online
// anomaly detection stage.
//
// The detector emits timestamped per-link alerts; the sink is the one
// place they land. It is thread-safe (the gateway's consumer thread
// appends while a display thread snapshots) and copyable (a stream
// Checkpoint is a deep copy of the whole engine, alerts included), and it
// mirrors every append into the process-wide metrics registry so a
// `netfail serve` metrics snapshot shows alert counts without touching
// engine internals.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/events.hpp"
#include "src/common/ids.hpp"
#include "src/common/sym.hpp"
#include "src/common/sync.hpp"
#include "src/common/thread_annotations.hpp"
#include "src/common/time.hpp"

namespace netfail::svc {
class EngineCodec;  // durable snapshot serializer (src/svc)
}  // namespace netfail::svc

namespace netfail::detect {

enum class AlertKind {
  /// An IS-IS adjacency DOWN was observed: the link is hard-down right now.
  kHardDown,
  /// The CUSUM statistic over syslog inter-failure gaps crossed its
  /// threshold: the link is failing anomalously often.
  kFlapCusum,
  /// A syslog template's per-window frequency jumped far above its
  /// baseline: message-pattern drift on this link.
  kTemplateDrift,
};

inline const char* alert_kind_name(AlertKind k) {
  switch (k) {
    case AlertKind::kHardDown: return "hard-down";
    case AlertKind::kFlapCusum: return "flap-cusum";
    case AlertKind::kTemplateDrift: return "template-drift";
  }
  return "?";
}

struct LinkAlert {
  LinkId link;
  TimePoint time;  // event time the alert fired at (simulated clock)
  AlertKind kind = AlertKind::kHardDown;
  /// Detector score at fire time: CUSUM statistic, drift ratio, or 0 for
  /// hard-down (the observation is the evidence).
  double score = 0.0;
  /// The drifting template for kTemplateDrift; invalid otherwise.
  Symbol template_id;
};

/// Thread-safe append-only alert log. The detector (engine thread) appends;
/// any thread may snapshot. Copyable so Checkpoint's engine deep-copy
/// carries the alert history; the `on_alert` callback survives copies the
/// same way LinkTracker callbacks do.
class AlertSink {
 public:
  AlertSink() = default;
  AlertSink(const AlertSink& other);
  AlertSink& operator=(const AlertSink& other);

  /// Invoked synchronously on every emit(), after the alert is recorded.
  std::function<void(const LinkAlert&)> on_alert;

  void emit(const LinkAlert& alert);

  std::uint64_t size() const;
  /// All alerts so far, emission order.
  std::vector<LinkAlert> snapshot() const;

 private:
  friend class netfail::svc::EngineCodec;

  mutable sync::Mutex mu_;
  std::vector<LinkAlert> alerts_ NETFAIL_GUARDED_BY(mu_);
};

}  // namespace netfail::detect
