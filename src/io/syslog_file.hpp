// Reading and writing collector-style syslog files.
//
// Real deployments keep what CENIC kept: flat text files of raw RFC 3164
// lines, one per message, ordered by arrival. These helpers round-trip a
// Collector through that format so the analysis pipeline can run over real
// captures. Because RFC 3164 lines carry no year and no arrival timestamp,
// the reader takes a capture-start hint and reconstructs monotonic arrival
// times from the message timestamps (the standard operational workaround).
#pragma once

#include <iosfwd>
#include <string>

#include "src/common/result.hpp"
#include "src/common/time.hpp"
#include "src/syslog/collector.hpp"

namespace netfail::io {

/// Write one line per received message (the raw text, newline-terminated).
void write_syslog_file(const syslog::Collector& collector, std::ostream& out);
Status write_syslog_file(const syslog::Collector& collector,
                         const std::string& path);

struct SyslogReadStats {
  std::size_t lines = 0;
  std::size_t blank = 0;
  std::size_t unparsable = 0;  // no usable timestamp; line is kept anyway
};

/// Load a flat syslog file into a Collector. `capture_start` anchors year
/// resolution; arrival times are reconstructed as the (year-resolved)
/// message timestamps, nudged forward where needed to stay monotonic.
Result<syslog::Collector> read_syslog_file(std::istream& in,
                                           TimePoint capture_start,
                                           SyslogReadStats* stats = nullptr);
Result<syslog::Collector> read_syslog_file(const std::string& path,
                                           TimePoint capture_start,
                                           SyslogReadStats* stats = nullptr);

}  // namespace netfail::io
