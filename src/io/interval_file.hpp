// IntervalSet persistence: one "begin_unix_ms <TAB> end_unix_ms" row per
// interval. Used for listener-offline windows (the sanitizer needs to know
// when the capture box was down) and any other operator-supplied window
// lists.
#pragma once

#include <iosfwd>
#include <string>

#include "src/common/interval_set.hpp"
#include "src/common/result.hpp"

namespace netfail::io {

void write_interval_file(const IntervalSet& set, std::ostream& out);
Status write_interval_file(const IntervalSet& set, const std::string& path);

Result<IntervalSet> read_interval_file(std::istream& in);
Result<IntervalSet> read_interval_file(const std::string& path);

}  // namespace netfail::io
