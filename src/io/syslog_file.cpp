#include "src/io/syslog_file.hpp"

#include <fstream>
#include <ostream>

#include "src/syslog/message.hpp"

namespace netfail::io {

void write_syslog_file(const syslog::Collector& collector, std::ostream& out) {
  for (const syslog::ReceivedLine& line : collector.lines()) {
    out << line.line << '\n';
  }
}

Status write_syslog_file(const syslog::Collector& collector,
                         const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return make_error(ErrorCode::kNotFound, "cannot open " + path);
  }
  write_syslog_file(collector, out);
  return out.good() ? Status::ok_status()
                    : Status(make_error(ErrorCode::kInternal,
                                        "write failed for " + path));
}

Result<syslog::Collector> read_syslog_file(std::istream& in,
                                           TimePoint capture_start,
                                           SyslogReadStats* stats) {
  SyslogReadStats local;
  SyslogReadStats& st = stats ? *stats : local;
  syslog::Collector collector;
  TimePoint cursor = capture_start;

  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) {
      ++st.blank;
      continue;
    }
    ++st.lines;
    // Arrival-time reconstruction: use the message's own timestamp resolved
    // against the moving cursor; unparsable lines inherit the cursor.
    TimePoint arrival = cursor;
    if (const Result<syslog::Message> m = syslog::parse_message(line)) {
      arrival = syslog::resolve_year(m->timestamp, cursor);
    } else {
      ++st.unparsable;
    }
    if (arrival < cursor) arrival = cursor;  // keep the collector monotonic
    collector.receive(arrival, line);
    cursor = arrival;
  }
  return collector;
}

Result<syslog::Collector> read_syslog_file(const std::string& path,
                                           TimePoint capture_start,
                                           SyslogReadStats* stats) {
  std::ifstream in(path);
  if (!in) {
    return make_error(ErrorCode::kNotFound, "cannot open " + path);
  }
  return read_syslog_file(in, capture_start, stats);
}

}  // namespace netfail::io
