#include "src/io/syslog_file.hpp"

#include <fstream>
#include <ostream>


namespace netfail::io {

void write_syslog_file(const syslog::Collector& collector, std::ostream& out) {
  for (const syslog::ReceivedLine& line : collector.lines()) {
    out << line.line << '\n';
  }
}

Status write_syslog_file(const syslog::Collector& collector,
                         const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return make_error(ErrorCode::kNotFound, "cannot open " + path);
  }
  write_syslog_file(collector, out);
  return out.good() ? Status::ok_status()
                    : Status(make_error(ErrorCode::kInternal,
                                        "write failed for " + path));
}

Result<syslog::Collector> read_syslog_file(std::istream& in,
                                           TimePoint capture_start,
                                           SyslogReadStats* stats) {
  SyslogReadStats local;
  SyslogReadStats& st = stats ? *stats : local;
  syslog::Collector collector;
  // The same arrival reconstruction the live UDP receiver applies, so a
  // capture file and its zero-loss replay load identically.
  syslog::ArrivalCursor cursor(capture_start);

  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) {
      ++st.blank;
      continue;
    }
    ++st.lines;
    bool parsable = false;
    const TimePoint arrival = cursor.arrival_of(line, &parsable);
    if (!parsable) ++st.unparsable;
    collector.receive(arrival, line);
  }
  return collector;
}

Result<syslog::Collector> read_syslog_file(const std::string& path,
                                           TimePoint capture_start,
                                           SyslogReadStats* stats) {
  std::ifstream in(path);
  if (!in) {
    return make_error(ErrorCode::kNotFound, "cannot open " + path);
  }
  return read_syslog_file(in, capture_start, stats);
}

}  // namespace netfail::io
