#include "src/io/config_dir.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "src/common/strfmt.hpp"

namespace netfail::io {

namespace fs = std::filesystem;

Status write_config_dir(const ConfigArchive& archive, const std::string& root) {
  std::error_code ec;
  fs::create_directories(root, ec);
  if (ec) {
    return make_error(ErrorCode::kInternal,
                      "cannot create " + root + ": " + ec.message());
  }
  for (const ConfigFile& file : archive.files()) {
    const fs::path dir = fs::path(root) / file.router_hostname;
    fs::create_directories(dir, ec);
    if (ec) {
      return make_error(ErrorCode::kInternal,
                        "cannot create " + dir.string() + ": " + ec.message());
    }
    const fs::path path =
        dir / strformat("%lld.cfg",
                        static_cast<long long>(file.captured_at.unix_seconds()));
    std::ofstream out(path);
    if (!out) {
      return make_error(ErrorCode::kInternal, "cannot write " + path.string());
    }
    out << file.text;
  }
  return Status::ok_status();
}

Result<ConfigArchive> read_config_dir(const std::string& root,
                                      ConfigDirStats* stats) {
  ConfigDirStats local;
  ConfigDirStats& st = stats ? *stats : local;
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    return make_error(ErrorCode::kNotFound, root + " is not a directory");
  }

  ConfigArchive archive;
  std::vector<ConfigFile> files;
  for (const fs::directory_entry& host_dir : fs::directory_iterator(root)) {
    if (!host_dir.is_directory()) {
      ++st.skipped;
      continue;
    }
    const std::string hostname = host_dir.path().filename().string();
    for (const fs::directory_entry& entry :
         fs::directory_iterator(host_dir.path())) {
      if (!entry.is_regular_file() || entry.path().extension() != ".cfg") {
        ++st.skipped;
        continue;
      }
      std::uint64_t ts = 0;
      if (!parse_uint(entry.path().stem().string(), ts)) {
        ++st.skipped;
        continue;
      }
      std::ifstream in(entry.path(), std::ios::binary);
      std::string text((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
      files.push_back(ConfigFile{
          hostname,
          TimePoint::from_unix_seconds(static_cast<std::int64_t>(ts)),
          std::move(text)});
      ++st.files;
    }
  }
  // Directory iteration order is unspecified; make the archive
  // deterministic.
  std::sort(files.begin(), files.end(),
            [](const ConfigFile& a, const ConfigFile& b) {
              if (a.router_hostname != b.router_hostname) {
                return a.router_hostname < b.router_hostname;
              }
              return a.captured_at < b.captured_at;
            });
  for (ConfigFile& f : files) archive.add(std::move(f));
  return archive;
}

}  // namespace netfail::io
