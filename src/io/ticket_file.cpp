#include "src/io/ticket_file.hpp"

#include <fstream>
#include <ostream>

#include "src/common/strfmt.hpp"

namespace netfail::io {

void write_ticket_file(const TicketStore& tickets, std::ostream& out) {
  for (const TroubleTicket& t : tickets.tickets()) {
    out << t.link_name << '\t' << t.outage.begin.unix_millis() << '\t'
        << t.outage.end.unix_millis() << '\t' << t.summary << '\n';
  }
}

Status write_ticket_file(const TicketStore& tickets, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return make_error(ErrorCode::kNotFound, "cannot open " + path);
  }
  write_ticket_file(tickets, out);
  return out.good() ? Status::ok_status()
                    : Status(make_error(ErrorCode::kInternal,
                                        "write failed for " + path));
}

Result<TicketStore> read_ticket_file(std::istream& in, TicketReadStats* stats) {
  TicketReadStats local;
  TicketReadStats& st = stats ? *stats : local;
  TicketStore store;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> cols = split(line, '\t');
    std::uint64_t begin_ms = 0, end_ms = 0;
    if (cols.size() < 4 || !parse_uint(cols[1], begin_ms) ||
        !parse_uint(cols[2], end_ms) || end_ms <= begin_ms) {
      ++st.malformed;
      continue;
    }
    store.file(cols[0],
               TimeRange{TimePoint::from_unix_millis(
                             static_cast<std::int64_t>(begin_ms)),
                         TimePoint::from_unix_millis(
                             static_cast<std::int64_t>(end_ms))},
               cols[3]);
    ++st.rows;
  }
  return store;
}

Result<TicketStore> read_ticket_file(const std::string& path,
                                     TicketReadStats* stats) {
  std::ifstream in(path);
  if (!in) {
    return make_error(ErrorCode::kNotFound, "cannot open " + path);
  }
  return read_ticket_file(in, stats);
}

}  // namespace netfail::io
