// Trouble tickets as a flat TSV file:
//
//   link_name <TAB> start_unix_ms <TAB> end_unix_ms <TAB> summary
//
// The sanitization step (sect. 4.2) needs tickets to verify long failures;
// this format lets a real deployment export theirs from whatever ticketing
// system they run.
#pragma once

#include <iosfwd>
#include <string>

#include "src/common/result.hpp"
#include "src/tickets/tickets.hpp"

namespace netfail::io {

void write_ticket_file(const TicketStore& tickets, std::ostream& out);
Status write_ticket_file(const TicketStore& tickets, const std::string& path);

struct TicketReadStats {
  std::size_t rows = 0;
  std::size_t malformed = 0;  // skipped
};

Result<TicketStore> read_ticket_file(std::istream& in,
                                     TicketReadStats* stats = nullptr);
Result<TicketStore> read_ticket_file(const std::string& path,
                                     TicketReadStats* stats = nullptr);

}  // namespace netfail::io
