#include "src/io/interval_file.hpp"

#include <fstream>
#include <ostream>

#include "src/common/strfmt.hpp"

namespace netfail::io {

void write_interval_file(const IntervalSet& set, std::ostream& out) {
  for (const TimeRange& r : set.ranges()) {
    out << r.begin.unix_millis() << '\t' << r.end.unix_millis() << '\n';
  }
}

Status write_interval_file(const IntervalSet& set, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return make_error(ErrorCode::kNotFound, "cannot open " + path);
  }
  write_interval_file(set, out);
  return out.good() ? Status::ok_status()
                    : Status(make_error(ErrorCode::kInternal,
                                        "write failed for " + path));
}

Result<IntervalSet> read_interval_file(std::istream& in) {
  IntervalSet set;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    const std::vector<std::string> cols = split(line, '\t');
    std::uint64_t begin_ms = 0, end_ms = 0;
    if (cols.size() < 2 || !parse_uint(cols[0], begin_ms) ||
        !parse_uint(cols[1], end_ms)) {
      return make_error(ErrorCode::kParseError,
                        strformat("bad interval at line %zu", lineno));
    }
    set.add(TimeRange{
        TimePoint::from_unix_millis(static_cast<std::int64_t>(begin_ms)),
        TimePoint::from_unix_millis(static_cast<std::int64_t>(end_ms))});
  }
  return set;
}

Result<IntervalSet> read_interval_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return make_error(ErrorCode::kNotFound, "cannot open " + path);
  }
  return read_interval_file(in);
}

}  // namespace netfail::io
