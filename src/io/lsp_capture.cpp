#include "src/io/lsp_capture.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <ostream>

namespace netfail::io {
namespace {

void put_u32(std::ostream& out, std::uint32_t v) {
  const std::array<char, 4> buf{
      static_cast<char>(v >> 24), static_cast<char>(v >> 16),
      static_cast<char>(v >> 8), static_cast<char>(v)};
  out.write(buf.data(), buf.size());
}

void put_u64(std::ostream& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
  put_u32(out, static_cast<std::uint32_t>(v));
}

bool get_u32(std::istream& in, std::uint32_t& v) {
  std::array<char, 4> buf;
  if (!in.read(buf.data(), buf.size())) return false;
  v = (static_cast<std::uint32_t>(static_cast<unsigned char>(buf[0])) << 24) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(buf[1])) << 16) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(buf[2])) << 8) |
      static_cast<std::uint32_t>(static_cast<unsigned char>(buf[3]));
  return true;
}

bool get_u64(std::istream& in, std::uint64_t& v) {
  std::uint32_t hi = 0, lo = 0;
  if (!get_u32(in, hi) || !get_u32(in, lo)) return false;
  v = (std::uint64_t{hi} << 32) | lo;
  return true;
}

}  // namespace

void write_lsp_capture(const std::vector<isis::LspRecord>& records,
                       std::ostream& out) {
  out.write(kLspCaptureMagic, sizeof kLspCaptureMagic);
  put_u32(out, 0);  // flags, reserved
  put_u64(out, records.size());
  for (const isis::LspRecord& rec : records) {
    put_u64(out, static_cast<std::uint64_t>(rec.received_at.unix_millis()));
    put_u32(out, static_cast<std::uint32_t>(rec.bytes.size()));
    out.write(reinterpret_cast<const char*>(rec.bytes.data()),
              static_cast<std::streamsize>(rec.bytes.size()));
  }
}

Status write_lsp_capture(const std::vector<isis::LspRecord>& records,
                         const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return make_error(ErrorCode::kNotFound, "cannot open " + path);
  }
  write_lsp_capture(records, out);
  return out.good() ? Status::ok_status()
                    : Status(make_error(ErrorCode::kInternal,
                                        "write failed for " + path));
}

Result<std::vector<isis::LspRecord>> read_lsp_capture(std::istream& in,
                                                      LspCaptureStats* stats) {
  LspCaptureStats local;
  LspCaptureStats& st = stats ? *stats : local;

  char magic[4];
  if (!in.read(magic, sizeof magic) ||
      std::memcmp(magic, kLspCaptureMagic, sizeof magic) != 0) {
    return make_error(ErrorCode::kParseError, "not an NFC1 LSP capture");
  }
  std::uint32_t flags = 0;
  std::uint64_t declared = 0;
  if (!get_u32(in, flags) || !get_u64(in, declared)) {
    return make_error(ErrorCode::kTruncated, "capture header truncated");
  }

  std::vector<isis::LspRecord> out;
  out.reserve(static_cast<std::size_t>(declared));
  while (true) {
    std::uint64_t at_ms = 0;
    if (!get_u64(in, at_ms)) break;  // clean end of file
    std::uint32_t len = 0;
    if (!get_u32(in, len)) {
      st.truncated_tail = true;
      break;
    }
    std::vector<std::uint8_t> payload(len);
    if (!in.read(reinterpret_cast<char*>(payload.data()),
                 static_cast<std::streamsize>(len))) {
      st.truncated_tail = true;
      break;
    }
    out.push_back(isis::LspRecord{
        TimePoint::from_unix_millis(static_cast<std::int64_t>(at_ms)),
        std::move(payload)});
    ++st.frames;
  }
  return out;
}

Result<std::vector<isis::LspRecord>> read_lsp_capture(const std::string& path,
                                                      LspCaptureStats* stats) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return make_error(ErrorCode::kNotFound, "cannot open " + path);
  }
  return read_lsp_capture(in, stats);
}

}  // namespace netfail::io
