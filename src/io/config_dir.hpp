// Configuration archives on disk.
//
// Layout mirrors common practice (one directory per device, one file per
// revision, named by capture time):
//
//   <root>/<hostname>/<unix_seconds>.cfg
//
// write_config_dir() lays a ConfigArchive out this way; read_config_dir()
// walks the tree back into an archive the miner can consume — the entry
// point for running the census step over a real RANCID-style archive.
#pragma once

#include <string>

#include "src/common/result.hpp"
#include "src/config/archive.hpp"

namespace netfail::io {

Status write_config_dir(const ConfigArchive& archive, const std::string& root);

struct ConfigDirStats {
  std::size_t files = 0;
  std::size_t skipped = 0;  // non-.cfg files or unparsable timestamps
};

/// Read every `<host>/<ts>.cfg` under `root`. Hostname comes from the
/// directory name; capture time from the file stem (Unix seconds).
Result<ConfigArchive> read_config_dir(const std::string& root,
                                      ConfigDirStats* stats = nullptr);

}  // namespace netfail::io
