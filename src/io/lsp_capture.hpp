// LSP capture files: persisting and reloading a listener's record stream.
//
// Format ("NFC1"): a 16-byte header, then one frame per record —
//   u64 arrival time (ms since Unix epoch, big endian)
//   u32 payload length
//   payload (raw IS-IS PDU bytes)
// Analogous to the MRT-style dumps PyRT wrote at CENIC; simple enough to
// parse from any language, self-describing enough to detect truncation.
#pragma once

#include <iosfwd>
#include <string>

#include "src/common/result.hpp"
#include "src/isis/listener.hpp"

namespace netfail::io {

inline constexpr char kLspCaptureMagic[4] = {'N', 'F', 'C', '1'};

void write_lsp_capture(const std::vector<isis::LspRecord>& records,
                       std::ostream& out);
Status write_lsp_capture(const std::vector<isis::LspRecord>& records,
                         const std::string& path);

struct LspCaptureStats {
  std::size_t frames = 0;
  bool truncated_tail = false;  // file ended mid-frame; prefix was kept
};

/// Read a capture; returns records in file order. A truncated final frame
/// is dropped (and flagged), matching how one recovers a capture cut short
/// by a listener crash.
Result<std::vector<isis::LspRecord>> read_lsp_capture(
    std::istream& in, LspCaptureStats* stats = nullptr);
Result<std::vector<isis::LspRecord>> read_lsp_capture(
    const std::string& path, LspCaptureStats* stats = nullptr);

}  // namespace netfail::io
