// A minimal poll(2)-based readiness loop for the ingest gateway's IO
// thread. Dependency-free and deliberately small: a handful of fds (one
// UDP socket, one listener, a few TCP connections) never justifies epoll's
// registration machinery, and poll keeps the loop portable to any POSIX.
//
// Thread model: add/remove/set_want_read and the callbacks run on the loop
// thread only. stop() and wake() are the two cross-thread entry points —
// both write one byte to a self-pipe, which is async-signal-safe, so the
// CLI's SIGINT handler may call them directly from the signal context.
// post() is a third, mutex-protected (NOT signal-safe) cross-thread entry:
// it hands a task to the loop thread, which is how the sharded gateway
// distributes accepted TCP connections across shard loops.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/thread_annotations.hpp"
#include "src/common/sync.hpp"
#include "src/net/socket.hpp"

namespace netfail::net {

class EventLoop {
 public:
  /// `revents` is the poll(2) bitmask (POLLIN/POLLHUP/POLLERR...).
  using Callback = std::function<void(short revents)>;

  EventLoop();

  /// Register a callback for readiness on `fd`. The fd is borrowed, never
  /// closed by the loop.
  void add(int fd, Callback cb);
  void remove(int fd);
  /// Pause/resume read interest without dropping the registration — the
  /// TCP backpressure switch.
  void set_want_read(int fd, bool enable);
  /// Arm/disarm POLLOUT interest — off by default (a socket is writable
  /// almost always, so level-triggered write interest would spin). The
  /// HTTP responder arms it only while a response is partially written.
  void set_want_write(int fd, bool enable);

  /// Run until stop(). `on_wake` (optional) runs on the loop thread after
  /// every wakeup — the consumer uses it to request watermark resumes.
  void run();
  /// One poll iteration with the given timeout; returns false once stopped.
  bool run_once(int timeout_ms);

  void set_on_wake(std::function<void()> fn) { on_wake_ = std::move(fn); }

  /// Cross-thread (and signal-safe): make run() return soon.
  void stop();
  /// Cross-thread (and signal-safe): interrupt the current poll.
  void wake();

  /// Cross-thread (mutex, NOT signal-safe): run `task` on the loop thread
  /// before the next dispatch pass. Tasks run in post order and may call
  /// add/remove/set_want_read. Tasks posted to a stopped loop run during
  /// the final run_once pass or not at all — an owner that must not lose
  /// them calls drain_posted() after joining the loop thread.
  void post(std::function<void()> task);

  /// Run any tasks still queued by post() on the *caller's* thread. Only
  /// legal once run() has returned and the loop thread is joined (there is
  /// no loop thread left to race); the gateway uses it so a connection
  /// registration that raced a stop is executed and accounted instead of
  /// silently discarded.
  void drain_posted();

  bool stopped() const;

 private:
  struct Entry {
    int fd;
    bool want_read;
    bool want_write;
    Callback cb;
  };

  void drain_wake_pipe();
  void run_posted();

  std::vector<Entry> entries_;
  std::function<void()> on_wake_;
  sync::Mutex posted_mu_;
  std::vector<std::function<void()>> posted_ NETFAIL_GUARDED_BY(posted_mu_);
  Fd wake_read_;
  Fd wake_write_;
  // Written from other threads / signal handlers, read by the loop
  // (lock-free atomic on every supported target, so signal-safe).
  std::atomic<bool> stop_flag_{false};
};

}  // namespace netfail::net
