#include "src/net/frame.hpp"

#include <algorithm>
#include <cstring>

namespace netfail::net {
namespace {

std::uint32_t read_u32be(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

std::uint64_t read_u64be(const std::uint8_t* p) {
  return (static_cast<std::uint64_t>(read_u32be(p)) << 32) | read_u32be(p + 4);
}

void append_u32be(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void append_u64be(std::vector<std::uint8_t>& out, std::uint64_t v) {
  append_u32be(out, static_cast<std::uint32_t>(v >> 32));
  append_u32be(out, static_cast<std::uint32_t>(v));
}

}  // namespace

void append_frame(std::vector<std::uint8_t>& out,
                  std::span<const std::uint8_t> payload) {
  append_u32be(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
}

void append_lsp_frame(std::vector<std::uint8_t>& out,
                      const isis::LspRecord& record) {
  append_u32be(out, static_cast<std::uint32_t>(8 + record.bytes.size()));
  append_u64be(out,
               static_cast<std::uint64_t>(record.received_at.unix_millis()));
  out.insert(out.end(), record.bytes.begin(), record.bytes.end());
}

Result<isis::LspRecord> decode_lsp_payload(
    std::span<const std::uint8_t> payload) {
  if (payload.size() < 8) {
    return make_error(ErrorCode::kTruncated,
                      "LSP frame payload shorter than its arrival timestamp");
  }
  isis::LspRecord record;
  record.received_at = TimePoint::from_unix_millis(
      static_cast<std::int64_t>(read_u64be(payload.data())));
  record.bytes.assign(payload.begin() + 8, payload.end());
  return record;
}

void FrameDecoder::feed(std::span<const std::uint8_t> bytes) {
  if (corrupt_) return;
  // Compact lazily: only when the dead prefix dominates, so steady-state
  // decoding moves each byte at most twice.
  if (consumed_ > 0 && consumed_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

std::optional<std::span<const std::uint8_t>> FrameDecoder::next() {
  if (corrupt_) return std::nullopt;
  if (buffered() < kFrameHeaderBytes) return std::nullopt;
  const std::uint8_t* head = buf_.data() + consumed_;
  const std::uint32_t len = read_u32be(head);
  if (len > max_payload_) {
    corrupt_ = true;
    return std::nullopt;
  }
  if (buffered() < kFrameHeaderBytes + len) return std::nullopt;
  consumed_ += kFrameHeaderBytes + len;
  return std::span<const std::uint8_t>(head + kFrameHeaderBytes, len);
}

std::size_t FrameDecoder::reset() {
  const std::size_t discarded = buffered();
  buf_.clear();
  consumed_ = 0;
  corrupt_ = false;
  return discarded;
}

}  // namespace netfail::net
