#include "src/net/event_loop.hpp"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

#include "src/common/assert.hpp"

namespace netfail::net {

EventLoop::EventLoop() {
  int fds[2];
  NETFAIL_ASSERT(::pipe(fds) == 0, "event loop self-pipe");
  wake_read_ = Fd(fds[0]);
  wake_write_ = Fd(fds[1]);
  (void)set_nonblocking(wake_read_);
  (void)set_nonblocking(wake_write_);
}

void EventLoop::add(int fd, Callback cb) {
  entries_.push_back(Entry{fd, true, false, std::move(cb)});
}

void EventLoop::remove(int fd) {
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [fd](const Entry& e) { return e.fd == fd; }),
                 entries_.end());
}

void EventLoop::set_want_read(int fd, bool enable) {
  for (Entry& e : entries_) {
    if (e.fd == fd) e.want_read = enable;
  }
}

void EventLoop::set_want_write(int fd, bool enable) {
  for (Entry& e : entries_) {
    if (e.fd == fd) e.want_write = enable;
  }
}

void EventLoop::drain_wake_pipe() {
  char buf[64];
  while (::read(wake_read_.get(), buf, sizeof(buf)) > 0) {
  }
}

void EventLoop::post(std::function<void()> task) {
  {
    sync::MutexLock lock(posted_mu_);
    posted_.push_back(std::move(task));
  }
  wake();
}

void EventLoop::drain_posted() { run_posted(); }

void EventLoop::run_posted() {
  std::vector<std::function<void()>> tasks;
  {
    sync::MutexLock lock(posted_mu_);
    tasks.swap(posted_);
  }
  for (auto& task : tasks) task();
}

bool EventLoop::run_once(int timeout_ms) {
  if (stop_flag_.load(std::memory_order_acquire)) return false;

  std::vector<pollfd> fds;
  fds.reserve(entries_.size() + 1);
  fds.push_back(pollfd{wake_read_.get(), POLLIN, 0});
  for (const Entry& e : entries_) {
    short events = 0;
    if (e.want_read) events |= POLLIN;
    if (e.want_write) events |= POLLOUT;
    if (events != 0) fds.push_back(pollfd{e.fd, events, 0});
  }

  const int n = ::poll(fds.data(), fds.size(), timeout_ms);
  if (n < 0 && errno != EINTR) return !stop_flag_.load(std::memory_order_acquire);

  if (fds[0].revents != 0) drain_wake_pipe();
  run_posted();
  if (on_wake_) on_wake_();
  if (stop_flag_.load(std::memory_order_acquire)) return false;

  // Dispatch against a snapshot of ready fds: callbacks may add/remove
  // entries, so re-find each entry by fd before invoking.
  for (std::size_t i = 1; i < fds.size(); ++i) {
    if (fds[i].revents == 0) continue;
    const int fd = fds[i].fd;
    const auto it =
        std::find_if(entries_.begin(), entries_.end(),
                     [fd](const Entry& e) { return e.fd == fd; });
    if (it != entries_.end() && it->cb) it->cb(fds[i].revents);
    if (stop_flag_.load(std::memory_order_acquire)) return false;
  }
  return true;
}

void EventLoop::run() {
  while (run_once(-1)) {
  }
}

void EventLoop::stop() {
  stop_flag_.store(true, std::memory_order_release);
  wake();
}

void EventLoop::wake() {
  const char b = 1;
  // EAGAIN (pipe already full of wakeups) is success for our purposes.
  [[maybe_unused]] const ssize_t n = ::write(wake_write_.get(), &b, 1);
}

bool EventLoop::stopped() const {
  return stop_flag_.load(std::memory_order_acquire);
}

}  // namespace netfail::net
