// net::Frame — the length-prefixed framing shared by the TCP LSP feed's
// sender and receiver.
//
// Wire layout per frame: u32 big-endian payload length, then the payload
// bytes. TCP is a byte stream, so the decoder reassembles frames across
// arbitrary read boundaries (a frame torn over many reads, several frames
// in one read) and survives a connection cut mid-frame: the partial tail is
// simply dropped on reset(), mirroring how the batch LSP capture reader
// drops a truncated final frame. A length above the decoder's maximum marks
// the stream corrupt — framing never resynchronizes on garbage.
//
// The LSP feed's payload is itself fixed-layout: u64 big-endian arrival
// time (ms since epoch) followed by the raw IS-IS PDU bytes — exactly the
// record an NFC1 capture file stores, so a served stream and a capture file
// are interchangeable observations.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/common/result.hpp"
#include "src/isis/listener.hpp"

namespace netfail::net {

/// Default cap on a frame payload. LSP PDUs are bounded near 1.5 KB; 64 KiB
/// leaves headroom for other record types without letting a corrupt length
/// allocate gigabytes.
inline constexpr std::uint32_t kMaxFramePayload = 64 * 1024;

inline constexpr std::size_t kFrameHeaderBytes = 4;

/// Append one frame (header + payload) to `out`.
void append_frame(std::vector<std::uint8_t>& out,
                  std::span<const std::uint8_t> payload);

/// Append one LSP-feed frame: payload = u64 BE arrival ms + PDU bytes.
void append_lsp_frame(std::vector<std::uint8_t>& out,
                      const isis::LspRecord& record);

/// Decode an LSP-feed frame payload back into a record.
Result<isis::LspRecord> decode_lsp_payload(
    std::span<const std::uint8_t> payload);

/// Incremental frame reassembly over a byte stream.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::uint32_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  /// Append raw bytes read from the stream.
  void feed(std::span<const std::uint8_t> bytes);

  /// The next complete frame's payload, or nullopt when more bytes are
  /// needed. The returned span points into the decoder's buffer and is
  /// valid until the next feed()/next()/reset() call. Zero-length frames
  /// are legal and yield an empty (but engaged) span.
  std::optional<std::span<const std::uint8_t>> next();

  /// True once a frame header announced a payload above the maximum; feed()
  /// and next() are no-ops until reset().
  bool corrupt() const { return corrupt_; }

  /// Drop all partial state (reconnect / corrupt stream recovery). Returns
  /// the number of buffered bytes that were discarded mid-frame.
  std::size_t reset();

  /// Bytes currently buffered (incomplete frame tail).
  std::size_t buffered() const { return buf_.size() - consumed_; }

 private:
  std::uint32_t max_payload_;
  std::vector<std::uint8_t> buf_;
  std::size_t consumed_ = 0;  // prefix of buf_ already handed out
  bool corrupt_ = false;
};

}  // namespace netfail::net
