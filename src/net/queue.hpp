// Bounded MPSC queues with a shared wait-set.
//
// The ingest gateway runs one IO thread (producers: the UDP receiver and
// the TCP feed) and one consumer thread (the StreamEngine). Each feed gets
// its own bounded queue, but the consumer must sleep on "either queue has
// work" — so queues are constructed over a shared WaitSet whose single
// mutex covers every queue attached to it. One mutex for a handful of
// queues is deliberate: operations are a push_back/pop_front under a lock,
// contention is two threads, and the single condition variable makes the
// multi-queue wait race-free by construction (no lost wakeups across
// queues). Measured well above the 200k msgs/sec ingest target.
//
// Overload policy is the caller's choice per push:
//   - try_push: refuse when full (the UDP feed counts a drop — datagram
//     transports lose, they do not block);
//   - watermark checks (above_high_watermark / below_low_watermark) let the
//     TCP feed stop reading its socket instead, pushing back through TCP
//     flow control to the sender.
#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "src/common/assert.hpp"
#include "src/common/metrics.hpp"
#include "src/common/sync.hpp"
#include "src/common/thread_annotations.hpp"

namespace netfail::net {

/// The mutex + condition variable shared by every queue of one gateway.
/// All queue operations lock `mu`; `cv` is notified on every push, close,
/// and watermark-relevant pop.
struct WaitSet {
  sync::Mutex mu;
  sync::CondVar cv;
};

template <typename T>
class BoundedMpsc {
 public:
  /// `depth`/`peak` (optional) are updated under the queue lock so metric
  /// snapshots never show an impossible level.
  BoundedMpsc(WaitSet& waitset, std::size_t capacity,
              metrics::Gauge* depth = nullptr, metrics::Gauge* peak = nullptr)
      : ws_(waitset), capacity_(capacity), depth_(depth), peak_(peak) {
    NETFAIL_ASSERT(capacity > 0, "queue capacity must be positive");
  }

  /// Enqueue unless full or closed; returns whether the item was taken.
  bool try_push(T item) {
    {
      sync::MutexLock lock(ws_.mu);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
      note_depth_locked();
    }
    ws_.cv.notify_all();
    return true;
  }

  /// Batch form of try_push: one lock + one notify for a whole recvmmsg
  /// sweep. Items [0, taken) are consumed from `items`; the rest were
  /// refused (full/closed) and remain valid. Returns `taken`.
  std::size_t try_push_batch(T* items, std::size_t count) {
    std::size_t taken = 0;
    {
      sync::MutexLock lock(ws_.mu);
      if (!closed_) {
        while (taken < count && items_.size() < capacity_) {
          items_.push_back(std::move(items[taken]));
          ++taken;
        }
        note_depth_locked();
      }
    }
    if (taken > 0) ws_.cv.notify_all();
    return taken;
  }

  /// Blocking push: waits while full, refuses only once closed. The LSP
  /// broadcast path uses this — TCP frames are the reliable source and must
  /// not be lost even when several IO loops overshoot the watermark check
  /// at once. The wait is timed (not purely notification-driven) because
  /// the consumer does not notify on pop; a full queue is already past the
  /// high watermark, so the producer is about to pause anyway and the
  /// bounded staleness is invisible.
  bool push_wait(T item) {
    {
      sync::UniqueLock lock(ws_.mu);
      while (!closed_ && items_.size() >= capacity_) {
        (void)ws_.cv.wait_for(lock, std::chrono::milliseconds(1));
      }
      if (closed_) return false;
      items_.push_back(std::move(item));
      note_depth_locked();
    }
    ws_.cv.notify_all();
    return true;
  }

  /// No new items after close; the consumer still drains what is buffered.
  void close() {
    {
      sync::MutexLock lock(ws_.mu);
      closed_ = true;
    }
    ws_.cv.notify_all();
  }

  /// Consumer side, caller holds ws_.mu (the gateway's merge loop inspects
  /// several queues under one lock).
  bool empty_locked() const NETFAIL_REQUIRES(ws_.mu) { return items_.empty(); }
  bool closed_locked() const NETFAIL_REQUIRES(ws_.mu) { return closed_; }
  /// Drained: closed and nothing left to pop.
  bool done_locked() const NETFAIL_REQUIRES(ws_.mu) {
    return closed_ && items_.empty();
  }
  const T& front_locked() const NETFAIL_REQUIRES(ws_.mu) {
    return items_.front();
  }
  T pop_locked() NETFAIL_REQUIRES(ws_.mu) {
    T item = std::move(items_.front());
    items_.pop_front();
    if (depth_ != nullptr) depth_->set(static_cast<std::int64_t>(items_.size()));
    return item;
  }

  std::size_t size() const {
    sync::MutexLock lock(ws_.mu);
    return items_.size();
  }

  // Watermark checks for producer-side backpressure (TCP pause/resume).
  bool above_high_watermark(std::size_t high) const {
    sync::MutexLock lock(ws_.mu);
    return items_.size() >= high;
  }
  bool below_low_watermark(std::size_t low) const {
    sync::MutexLock lock(ws_.mu);
    return items_.size() <= low;
  }

 private:
  void note_depth_locked() NETFAIL_REQUIRES(ws_.mu) {
    if (depth_ != nullptr) {
      const auto n = static_cast<std::int64_t>(items_.size());
      depth_->set(n);
      if (peak_ != nullptr) peak_->set_max(n);
    } else if (peak_ != nullptr) {
      peak_->set_max(static_cast<std::int64_t>(items_.size()));
    }
  }

  WaitSet& ws_;
  std::size_t capacity_;
  metrics::Gauge* depth_;
  metrics::Gauge* peak_;
  std::deque<T> items_ NETFAIL_GUARDED_BY(ws_.mu);
  bool closed_ NETFAIL_GUARDED_BY(ws_.mu) = false;
};

}  // namespace netfail::net
