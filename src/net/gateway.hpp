// net::IngestGateway — the socket front end of the streaming analysis
// engine: the paper's two collection artifacts as live network services.
//
//   - UDP syslog receiver: one RFC 3164 datagram per message, exactly the
//     transport real routers use (paper sect. 3.3). UDP does not ack and
//     the gateway does not block: when the bounded ingest queue is full the
//     datagram is dropped and *counted* — the collector-side bias the
//     syslogd availability literature warns about becomes a first-class
//     metric instead of a silent skew.
//   - TCP LSP feed: length-prefixed frames (net::Frame) carrying arrival
//     timestamp + raw IS-IS PDU bytes, the live analogue of an NFC1
//     capture. TCP is the reliable source, so it is *never* dropped:
//     above the queue's high watermark the gateway stops reading the
//     socket and lets TCP flow control push back to the sender; reading
//     resumes below the low watermark.
//
// One IO thread runs the poll loop and fills two bounded MPSC queues; one
// consumer thread drains them into a stream::StreamEngine, reconstructing
// syslog arrival times with the same ArrivalCursor the batch file reader
// uses — which is why a zero-loss replay of a capture bundle yields
// analysis output byte-identical to the batch pipeline over the same
// files. Shutdown (stop(), or request_stop() from a SIGINT handler) stops
// the IO loop, drains both queues through the engine, and snapshots a
// final Checkpoint before finish().
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/common/thread_annotations.hpp"
#include "src/config/census.hpp"
#include "src/net/event_loop.hpp"
#include "src/net/frame.hpp"
#include "src/net/queue.hpp"
#include "src/net/socket.hpp"
#include "src/stream/engine.hpp"

namespace netfail::net {

/// A replay sender marks end-of-stream with this out-of-band datagram (it
/// can never parse as a syslog message). Sent multiply because UDP.
inline constexpr std::string_view kReplayEndMarker = "<netfail:replay-end>";

struct GatewayOptions {
  /// Loopback by default: tests and CI sandboxes never open a visible port.
  std::string bind_host = "127.0.0.1";
  std::uint16_t syslog_port = 0;  // 0 = ephemeral, read back via accessor
  std::uint16_t lsp_port = 0;

  std::size_t syslog_queue_capacity = 1 << 16;
  std::size_t lsp_queue_capacity = 1 << 16;
  /// 0 = derive: high = 3/4 capacity, low = 1/4 capacity.
  std::size_t lsp_high_watermark = 0;
  std::size_t lsp_low_watermark = 0;

  int recv_buffer_bytes = 4 << 20;

  /// Anchors syslog arrival-time reconstruction (the bundle's period
  /// begin, same as the batch reader's capture_start).
  TimePoint capture_start;
  stream::EngineOptions engine;

  /// Invoked on the freshly constructed engine, before any thread exists —
  /// the race-free place to install tracker callbacks (which then run on
  /// the consumer thread).
  std::function<void(stream::StreamEngine&)> engine_setup;

  /// Artificial per-event consumer stall (wall-clock, not simulation
  /// time). Test/fault-injection knob: a deliberately slow consumer is how
  /// the backpressure path is exercised deterministically on a fast
  /// machine.
  std::chrono::microseconds consumer_slowdown{0};
};

/// Post-stop accounting snapshot. Exact: every datagram and frame the
/// kernel handed us lands in exactly one of these buckets.
struct GatewayCounters {
  std::uint64_t syslog_datagrams = 0;    // received, excluding end markers
  std::uint64_t syslog_enqueued = 0;
  std::uint64_t syslog_queue_drops = 0;  // bounded-queue overflow
  std::uint64_t end_markers = 0;

  std::uint64_t lsp_frames = 0;          // complete frames decoded
  std::uint64_t lsp_decode_errors = 0;   // frame payload not a valid record
  std::uint64_t lsp_torn_tails = 0;      // connections cut mid-frame
  std::uint64_t lsp_corrupt_streams = 0; // framing violation, conn dropped
  std::uint64_t lsp_out_of_order = 0;    // arrival time-travel, event dropped

  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t backpressure_pauses = 0; // pause transitions, not duration
};

class IngestGateway {
 public:
  IngestGateway(const LinkCensus& census, GatewayOptions options);
  ~IngestGateway();

  IngestGateway(const IngestGateway&) = delete;
  IngestGateway& operator=(const IngestGateway&) = delete;

  /// Bind both sockets and spawn the IO + consumer threads. Fails (with no
  /// threads spawned) when a socket cannot be created or bound — e.g. a
  /// sandbox that forbids sockets; callers should surface, not crash.
  Status start();

  std::uint16_t syslog_port() const { return syslog_port_; }
  std::uint16_t lsp_port() const { return lsp_port_; }
  bool running() const { return running_; }

  /// Block until a replay finished cleanly: at least one end marker seen,
  /// at least `min_connections` LSP connections accepted and all of them
  /// closed again, both queues drained, consumer idle. False on timeout
  /// (wall clock). `min_connections` guards the race where the end marker
  /// datagram is dispatched before the TCP accept it raced with.
  bool wait_replay_complete(std::chrono::milliseconds timeout,
                            std::uint64_t min_connections = 0);

  /// Async-signal-safe stop request (the CLI SIGINT handler calls this):
  /// flags the IO loop; the owner must still call stop() to join+drain.
  void request_stop();

  /// Full shutdown: stop IO, close queues, drain the consumer through the
  /// engine, snapshot the final Checkpoint, finish the trackers.
  /// Idempotent.
  void stop();

  // ---- results, valid after stop() -----------------------------------------
  stream::StreamEngine& engine();
  const stream::StreamEngine& engine() const;
  /// Engine state as of the last event drained, before finish().
  const stream::Checkpoint& final_checkpoint() const;
  /// Alerts the detection stage had emitted by the final checkpoint (0
  /// with detection disabled). Like counters(), this is a post-stop()
  /// snapshot: the consumer thread feeds the detector, so the count is
  /// only coherent after the drain completes.
  std::uint64_t final_alerts() const;
  GatewayCounters counters() const;

 private:
  struct Connection {
    Fd fd;
    FrameDecoder decoder;
    bool paused = false;
  };

  void io_thread();
  void consumer_thread();
  void on_udp_readable();
  void on_accept();
  void on_connection_readable(Connection& conn, short revents);
  void extract_frames(Connection& conn);
  void close_connection(int fd);
  void maybe_resume_connections();

  const LinkCensus* census_;
  GatewayOptions options_;
  std::size_t high_watermark_ = 0;
  std::size_t low_watermark_ = 0;

  Fd udp_;
  Fd listener_;
  std::uint16_t syslog_port_ = 0;
  std::uint16_t lsp_port_ = 0;

  EventLoop loop_;
  WaitSet ws_;
  BoundedMpsc<std::string> syslog_queue_;
  BoundedMpsc<isis::LspRecord> lsp_queue_;

  std::unique_ptr<stream::StreamEngine> engine_;
  stream::Checkpoint final_checkpoint_;

  std::vector<std::unique_ptr<Connection>> connections_;  // IO thread only
  GatewayCounters counters_;  // fields owned per-thread; snapshot after join
  /// How many connections are read-paused; the consumer polls this to know
  /// whether draining below the low watermark warrants a loop wakeup.
  std::atomic<int> paused_conns_{0};

  // Replay-completion state (events are rare, so sharing the queues' wait
  // set costs nothing and lets wait_replay_complete() sleep on one cv).
  std::uint64_t markers_seen_ NETFAIL_GUARDED_BY(ws_.mu) = 0;
  std::uint64_t conns_open_ NETFAIL_GUARDED_BY(ws_.mu) = 0;
  std::uint64_t conns_accepted_ NETFAIL_GUARDED_BY(ws_.mu) = 0;
  bool consumer_idle_ NETFAIL_GUARDED_BY(ws_.mu) = false;

  std::thread io_;
  std::thread consumer_;
  bool running_ = false;
  bool stopped_ = false;
};

}  // namespace netfail::net
