// net::IngestGateway — the socket front end of the streaming analysis
// engine: the paper's two collection artifacts as live network services.
//
//   - UDP syslog receiver: one RFC 3164 datagram per message, exactly the
//     transport real routers use (paper sect. 3.3). UDP does not ack and
//     the gateway does not block: when the bounded ingest queue is full the
//     datagram is dropped and *counted* — the collector-side bias the
//     syslogd availability literature warns about becomes a first-class
//     metric instead of a silent skew.
//   - TCP LSP feed: length-prefixed frames (net::Frame) carrying arrival
//     timestamp + raw IS-IS PDU bytes, the live analogue of an NFC1
//     capture. TCP is the reliable source, so it is *never* dropped:
//     above the queue's high watermark the gateway stops reading the
//     socket and lets TCP flow control push back to the sender; reading
//     resumes below the low watermark.
//
// Sharded operation (`GatewayOptions::shards = N`, DESIGN.md §14): N IO
// event loops and N analysis shards. Each shard is an independent lane —
// bounded MPSC queues, one consumer thread, one stream::StreamEngine
// partitioned by the stable link hash (stream::ShardMap) — so per-link
// analysis state never crosses a thread boundary. UDP datagrams arrive on
// per-loop SO_REUSEPORT sockets when the kernel grants them (detected at
// start(); single-socket fallback otherwise) and are *routed* to the
// owning shard's queue by parsing the line on the IO thread; TCP
// connections are accepted on loop 0 and distributed round-robin across
// loops via EventLoop::post; decoded LSP records are *broadcast* to every
// shard (the IS-IS extractor needs both endpoints' LSPs for its pair
// state). The broadcast runs under a single gateway-wide order lock: the
// out-of-order drop decision is made once, on the IO thread, and the kept
// record is pushed to every shard before the lock is released, so all
// shard queues carry the identical LSP sequence no matter how many
// connections or IO threads are live. Syslog arrival times are likewise
// assigned at dispatch time, one ArrivalCursor per UDP socket (each
// socket is one ingress ordering domain), so the monotonic clamp never
// depends on how lines were routed across shards. Backpressure pauses a
// connection when ANY shard's LSP queue is above its high watermark and
// resumes when ALL are below the low one.
// stream::merge_shard_runs folds the per-shard results into output
// byte-identical to the serial single-shard run.
//
// With shards == 1 (the default) the wiring degenerates to the original
// single-loop single-consumer gateway: a zero-loss replay of a capture
// bundle yields analysis output byte-identical to the batch pipeline over
// the same files. Shutdown (stop(), or request_stop() from a SIGINT
// handler) stops the IO loops, drains all queues through the engines, and
// snapshots a final Checkpoint per shard before finish().
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/common/thread_annotations.hpp"
#include "src/config/census.hpp"
#include "src/net/event_loop.hpp"
#include "src/net/frame.hpp"
#include "src/net/queue.hpp"
#include "src/net/socket.hpp"
#include "src/stream/engine.hpp"
#include "src/stream/sharded.hpp"
#include "src/syslog/collector.hpp"

namespace netfail::net {

/// A replay sender marks end-of-stream with this out-of-band datagram (it
/// can never parse as a syslog message). Sent multiply because UDP.
inline constexpr std::string_view kReplayEndMarker = "<netfail:replay-end>";

struct GatewayOptions {
  /// Loopback by default: tests and CI sandboxes never open a visible port.
  std::string bind_host = "127.0.0.1";
  std::uint16_t syslog_port = 0;  // 0 = ephemeral, read back via accessor
  std::uint16_t lsp_port = 0;

  /// Number of shards (IO loops x consumer lanes). 1 = the serial gateway.
  std::uint32_t shards = 1;
  /// Test knob: behave as if the kernel refused SO_REUSEPORT, forcing the
  /// single-socket + hash-dispatch fallback even for shards > 1.
  bool force_single_udp_socket = false;

  /// Per-shard queue capacities (each shard gets its own pair of queues).
  std::size_t syslog_queue_capacity = 1 << 16;
  std::size_t lsp_queue_capacity = 1 << 16;
  /// 0 = derive: high = 3/4 capacity, low = 1/4 capacity.
  std::size_t lsp_high_watermark = 0;
  std::size_t lsp_low_watermark = 0;

  int recv_buffer_bytes = 4 << 20;

  /// Anchors syslog arrival-time reconstruction (the bundle's period
  /// begin, same as the batch reader's capture_start).
  TimePoint capture_start;
  stream::EngineOptions engine;

  /// Invoked on each freshly constructed shard engine, before any thread
  /// exists — the race-free place to install tracker callbacks (which then
  /// run on that shard's consumer thread; callbacks for different shards
  /// run concurrently, so shared sinks must be per-shard or synchronized).
  std::function<void(std::uint32_t shard, stream::StreamEngine&)> engine_setup;

  /// Artificial per-event consumer stall (wall-clock, not simulation
  /// time). Test/fault-injection knob: a deliberately slow consumer is how
  /// the backpressure path is exercised deterministically on a fast
  /// machine.
  std::chrono::microseconds consumer_slowdown{0};
};

/// Post-stop accounting snapshot. Exact: every datagram and frame the
/// kernel handed us lands in exactly one of these buckets. Counts are
/// aggregated across all IO loops and consumer lanes.
struct GatewayCounters {
  std::uint64_t syslog_datagrams = 0;    // received, excluding end markers
  std::uint64_t syslog_enqueued = 0;
  std::uint64_t syslog_queue_drops = 0;  // bounded-queue overflow
  std::uint64_t end_markers = 0;

  std::uint64_t lsp_frames = 0;          // complete frames decoded
  std::uint64_t lsp_decode_errors = 0;   // frame payload not a valid record
  std::uint64_t lsp_torn_tails = 0;      // connections cut mid-frame
  std::uint64_t lsp_corrupt_streams = 0; // framing violation, conn dropped
  /// Arrival time-travel: the frame was dropped at broadcast time, before
  /// reaching any shard, so one drop counts once regardless of shard count.
  std::uint64_t lsp_out_of_order = 0;

  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t backpressure_pauses = 0; // pause transitions, not duration

  /// UDP sockets actually bound: options.shards when SO_REUSEPORT was
  /// granted, 1 in the fallback (or serial) configuration.
  std::uint64_t udp_sockets = 0;
};

class IngestGateway {
 public:
  IngestGateway(const LinkCensus& census, GatewayOptions options);
  ~IngestGateway();

  IngestGateway(const IngestGateway&) = delete;
  IngestGateway& operator=(const IngestGateway&) = delete;

  /// Bind the sockets and spawn the IO + consumer threads. Fails (with no
  /// threads spawned) when a socket cannot be created or bound — e.g. a
  /// sandbox that forbids sockets; callers should surface, not crash.
  Status start();

  std::uint16_t syslog_port() const { return syslog_port_; }
  std::uint16_t lsp_port() const { return lsp_port_; }
  bool running() const { return running_; }
  std::uint32_t shard_count() const { return options_.shards; }
  const stream::ShardMap& shard_map() const { return shard_map_; }

  /// Block until a replay finished cleanly: at least one end marker seen,
  /// at least `min_connections` LSP connections accepted and all of them
  /// closed again, every shard's queues drained and its consumer idle.
  /// False on timeout (wall clock). `min_connections` guards the race
  /// where the end marker datagram is dispatched before the TCP accept it
  /// raced with.
  bool wait_replay_complete(std::chrono::milliseconds timeout,
                            std::uint64_t min_connections = 0);

  /// Async-signal-safe stop request (the CLI SIGINT handler calls this):
  /// flags the IO loops; the owner must still call stop() to join+drain.
  void request_stop();

  /// One read-consistent deep-copy Checkpoint per shard, each taken by that
  /// shard's consumer thread at a batch boundary (between drain batches,
  /// under the shard's wait-set lock — never mid-event, so every per-link
  /// row in the copy is exactly what an uninterrupted engine would report
  /// at that shard's high-water mark). Blocks until every shard has
  /// answered; callable from any thread while the gateway runs, and still
  /// valid before start() (direct snapshot) or after the consumers exit
  /// (returns the final checkpoints). This is the HTTP query API's
  /// `snapshot_fn` and the durable-checkpoint writer's source of truth.
  std::vector<stream::Checkpoint> snapshot_engines();

  /// Full shutdown: stop IO, close queues, drain every consumer through
  /// its engine, snapshot the final Checkpoints, finish the trackers.
  /// Idempotent.
  void stop();

  // ---- results, valid after stop() -----------------------------------------
  /// Shard 0's engine — the complete result for the serial (shards == 1)
  /// gateway; one partition of it otherwise (see engine(shard)).
  stream::StreamEngine& engine() { return engine(0); }
  const stream::StreamEngine& engine() const { return engine(0); }
  stream::StreamEngine& engine(std::uint32_t shard);
  const stream::StreamEngine& engine(std::uint32_t shard) const;
  /// Engine state as of the last event drained, before finish().
  const stream::Checkpoint& final_checkpoint() const {
    return final_checkpoint(0);
  }
  const stream::Checkpoint& final_checkpoint(std::uint32_t shard) const;
  /// Alerts the detection stage had emitted by the final checkpoints,
  /// summed across shards (0 with detection disabled). Like counters(),
  /// this is a post-stop() snapshot: the consumer threads feed the
  /// detectors, so the count is only coherent after the drain completes.
  std::uint64_t final_alerts() const;
  GatewayCounters counters() const;

 private:
  struct Connection {
    Fd fd;
    FrameDecoder decoder;
    bool paused = false;
    std::size_t loop = 0;  // owning IO loop index
  };

  /// One IO lane: an event loop on its own thread, its UDP socket (when
  /// bound) and the TCP connections it owns. All fields except `loop`'s
  /// cross-thread entry points are loop-thread-only once started.
  struct IoLoop {
    explicit IoLoop(TimePoint capture_start) : cursor(capture_start) {}

    EventLoop loop;
    std::thread thread;
    Fd udp;
    /// Arrival-time reconstruction for this socket's datagrams. One cursor
    /// per UDP socket — each socket is one ingress ordering domain, so the
    /// monotonic clamp runs over the socket's own arrival order exactly as
    /// the batch reader's cursor runs over file order. Stamping happens on
    /// the IO thread *before* shard routing: received_at never depends on
    /// how lines were split across consumer lanes.
    syslog::ArrivalCursor cursor;
    std::vector<std::shared_ptr<Connection>> connections;
    GatewayCounters io;  // this loop's share; summed after join
  };

  /// One analysis lane: queues + consumer thread + partitioned engine.
  struct Shard {
    Shard(const LinkCensus& census, const GatewayOptions& options,
          const stream::ShardMap& map, std::uint32_t shard_index);

    std::uint32_t index = 0;
    WaitSet ws;
    BoundedMpsc<syslog::ReceivedLine> syslog_queue;
    BoundedMpsc<isis::LspRecord> lsp_queue;
    std::unique_ptr<stream::StreamEngine> engine;
    stream::Checkpoint final_checkpoint;
    std::thread consumer;
    bool consumer_idle NETFAIL_GUARDED_BY(ws.mu) = false;
    /// Live-snapshot handshake (snapshot_engines): a requester sets the
    /// flag and waits; the consumer answers at its next batch boundary.
    bool snapshot_requested NETFAIL_GUARDED_BY(ws.mu) = false;
    stream::Checkpoint snapshot_out NETFAIL_GUARDED_BY(ws.mu);
    /// Set (with final_checkpoint, under ws.mu) when the consumer exits, so
    /// a snapshot request can never hang on a thread that is gone.
    bool consumer_done NETFAIL_GUARDED_BY(ws.mu) = false;
  };

  Status bind_udp_sockets();
  void io_thread(std::size_t loop_idx);
  void consumer_thread(Shard& shard);
  void on_udp_readable(std::size_t loop_idx);
  void on_accept();
  void register_connection(std::size_t loop_idx,
                           std::shared_ptr<Connection> conn);
  void on_connection_readable(std::size_t loop_idx, Connection& conn,
                              short revents);
  void extract_frames(IoLoop& lp, Connection& conn);
  void close_connection(std::size_t loop_idx, int fd);
  void maybe_resume_connections(std::size_t loop_idx);
  bool any_lsp_queue_above_high() const;
  bool all_lsp_queues_below_low() const;
  void wake_all_loops();
  bool replay_complete(std::uint64_t min_connections);

  const LinkCensus* census_;
  GatewayOptions options_;
  std::size_t high_watermark_ = 0;
  std::size_t low_watermark_ = 0;

  stream::ShardMap shard_map_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<IoLoop>> loops_;

  Fd listener_;
  std::uint16_t syslog_port_ = 0;
  std::uint16_t lsp_port_ = 0;

  GatewayCounters counters_;  // aggregated during stop()
  /// How many connections are read-paused (any loop); consumers poll this
  /// to know whether draining below the low watermark warrants a wakeup.
  std::atomic<int> paused_conns_{0};
  /// Round-robin cursor for TCP accept distribution (loop 0 only).
  std::size_t next_conn_loop_ = 0;

  // LSP broadcast order lock. The monotonic out-of-order drop decision and
  // the push to every shard queue happen atomically under this mutex, so
  // the drop set AND the delivery order are identical across shards no
  // matter how concurrent IO threads interleave — the invariant
  // merge_shard_runs asserts. Held only on IO threads; consumers never
  // take it, so a push_wait blocking under it cannot deadlock. The shard
  // queue lock (WaitSet::mu, taken inside push_wait) therefore nests
  // under this one, never the other way around.
  // netfail-audit: acquired-before(mu)
  sync::Mutex lsp_order_mu_;
  TimePoint last_lsp_arrival_ NETFAIL_GUARDED_BY(lsp_order_mu_);
  bool have_lsp_ NETFAIL_GUARDED_BY(lsp_order_mu_) = false;

  // Replay-completion state. Its own wait set: producers on any IO loop
  // update it, the watcher sleeps on it, and per-shard queue/idle state is
  // polled under the shards' own locks (never both at once — no ordering
  // edge between done_mu_ and any shard's ws.mu).
  sync::Mutex done_mu_;
  sync::CondVar done_cv_;
  std::uint64_t markers_seen_ NETFAIL_GUARDED_BY(done_mu_) = 0;
  std::uint64_t conns_open_ NETFAIL_GUARDED_BY(done_mu_) = 0;
  std::uint64_t conns_accepted_ NETFAIL_GUARDED_BY(done_mu_) = 0;

  bool running_ = false;
  bool stopped_ = false;
};

}  // namespace netfail::net
