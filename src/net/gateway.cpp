#include "src/net/gateway.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <span>
#include <utility>

#include "src/common/assert.hpp"
#include "src/common/metrics.hpp"
#include "src/common/sync.hpp"
#include "src/syslog/collector.hpp"
#include "src/syslog/message.hpp"

namespace netfail::net {
namespace {

// recvmmsg batch geometry. RFC 3164 caps a packet at 1024 bytes; 2 KiB per
// slot leaves room for the simulator's longest rendered lines, and 64 slots
// amortize the syscall enough to clear the ingest throughput target on one
// core.
constexpr int kRecvBatch = 64;
constexpr std::size_t kMaxDatagram = 2048;

// How many items the consumer moves out of a queue per lock acquisition.
constexpr std::size_t kDrainBatch = 256;

// Shard 0 keeps the legacy metric names (dashboards and tests depend on
// them, and the serial gateway *is* shard 0); other shards get a suffix.
std::string shard_metric(const char* base, std::uint32_t shard) {
  std::string name(base);
  if (shard != 0) {
    name += ".shard";
    name += std::to_string(shard);
  }
  return name;
}

metrics::Gauge* shard_gauge(const char* base, std::uint32_t shard) {
  return &metrics::global().gauge(shard_metric(base, shard));
}

// Bind `count` SO_REUSEPORT sockets sharing one UDP port; fills `out` and
// returns the bound port. kUnsupported tells the caller to fall back to a
// single socket; partial binds are released by `out`'s destructors.
Result<std::uint16_t> bind_reuseport_set(const std::string& host,
                                         std::uint16_t port,
                                         std::uint32_t count,
                                         std::vector<Fd>& out) {
  auto first = udp_bind_reuseport(host, port);
  if (!first) return first.error();
  auto bound = local_port(*first);
  if (!bound) return bound.error();
  out.push_back(std::move(*first));
  for (std::uint32_t i = 1; i < count; ++i) {
    auto fd = udp_bind_reuseport(host, *bound);
    if (!fd) return fd.error();
    out.push_back(std::move(*fd));
  }
  return *bound;
}

void add_counters(GatewayCounters& into, const GatewayCounters& from) {
  into.syslog_datagrams += from.syslog_datagrams;
  into.syslog_enqueued += from.syslog_enqueued;
  into.syslog_queue_drops += from.syslog_queue_drops;
  into.end_markers += from.end_markers;
  into.lsp_frames += from.lsp_frames;
  into.lsp_decode_errors += from.lsp_decode_errors;
  into.lsp_torn_tails += from.lsp_torn_tails;
  into.lsp_corrupt_streams += from.lsp_corrupt_streams;
  into.lsp_out_of_order += from.lsp_out_of_order;
  into.connections_accepted += from.connections_accepted;
  into.connections_closed += from.connections_closed;
  into.backpressure_pauses += from.backpressure_pauses;
  into.udp_sockets += from.udp_sockets;
}

}  // namespace

IngestGateway::Shard::Shard(const LinkCensus& census,
                            const GatewayOptions& options,
                            const stream::ShardMap& map,
                            std::uint32_t shard_index)
    : index(shard_index),
      syslog_queue(ws, options.syslog_queue_capacity,
                   shard_gauge("net.syslog_queue.depth", shard_index),
                   shard_gauge("net.syslog_queue.peak", shard_index)),
      lsp_queue(ws, options.lsp_queue_capacity,
                shard_gauge("net.lsp_queue.depth", shard_index),
                shard_gauge("net.lsp_queue.peak", shard_index)) {
  stream::EngineOptions eo = options.engine;
  eo.partition = &map;
  eo.shard = shard_index;
  engine = std::make_unique<stream::StreamEngine>(census, eo);
}

IngestGateway::IngestGateway(const LinkCensus& census, GatewayOptions options)
    : census_(&census),
      options_(std::move(options)),
      shard_map_(census, options_.shards) {
  NETFAIL_ASSERT(options_.shards >= 1, "gateway needs at least one shard");
  high_watermark_ = options_.lsp_high_watermark != 0
                        ? options_.lsp_high_watermark
                        : options_.lsp_queue_capacity * 3 / 4;
  low_watermark_ = options_.lsp_low_watermark != 0
                       ? options_.lsp_low_watermark
                       : options_.lsp_queue_capacity / 4;
  NETFAIL_ASSERT(low_watermark_ < high_watermark_ &&
                     high_watermark_ <= options_.lsp_queue_capacity,
                 "lsp watermarks must satisfy low < high <= capacity");
  for (std::uint32_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(
        std::make_unique<Shard>(census, options_, shard_map_, i));
    loops_.push_back(std::make_unique<IoLoop>(options_.capture_start));
    if (options_.engine_setup) options_.engine_setup(i, *shards_[i]->engine);
  }
}

IngestGateway::~IngestGateway() { stop(); }

Status IngestGateway::bind_udp_sockets() {
  if (options_.shards > 1 && !options_.force_single_udp_socket) {
    std::vector<Fd> fds;
    auto port = bind_reuseport_set(options_.bind_host, options_.syslog_port,
                                   options_.shards, fds);
    if (port) {
      syslog_port_ = *port;
      for (std::uint32_t i = 0; i < options_.shards; ++i) {
        (void)set_recv_buffer(fds[i], options_.recv_buffer_bytes);
        if (Status st = set_nonblocking(fds[i]); !st.ok()) return st;
        loops_[i]->udp = std::move(fds[i]);
        loops_[i]->io.udp_sockets = 1;
      }
      return Status::ok_status();
    }
    if (port.error().code != ErrorCode::kUnsupported) {
      return Status(port.error());
    }
    // SO_REUSEPORT refused at runtime: fall through to one socket on loop 0;
    // shard routing still happens per datagram via the hash dispatch.
  }
  auto udp = udp_bind(options_.bind_host, options_.syslog_port);
  if (!udp) return Status(udp.error());
  (void)set_recv_buffer(*udp, options_.recv_buffer_bytes);
  if (Status st = set_nonblocking(*udp); !st.ok()) return st;
  auto sport = local_port(*udp);
  if (!sport) return Status(sport.error());
  syslog_port_ = *sport;
  loops_[0]->udp = std::move(*udp);
  loops_[0]->io.udp_sockets = 1;
  return Status::ok_status();
}

Status IngestGateway::start() {
  NETFAIL_ASSERT(!running_ && !stopped_, "gateway started twice");
  if (Status st = bind_udp_sockets(); !st.ok()) return st;
  auto listener = tcp_listen(options_.bind_host, options_.lsp_port, 16);
  if (!listener) return Status(listener.error());
  listener_ = std::move(*listener);
  if (Status st = set_nonblocking(listener_); !st.ok()) return st;
  auto lport = local_port(listener_);
  if (!lport) return Status(lport.error());
  lsp_port_ = *lport;

  for (std::size_t i = 0; i < loops_.size(); ++i) {
    IoLoop& lp = *loops_[i];
    if (lp.udp.valid()) {
      lp.loop.add(lp.udp.get(), [this, i](short) { on_udp_readable(i); });
    }
    lp.loop.set_on_wake([this, i] { maybe_resume_connections(i); });
  }
  loops_[0]->loop.add(listener_.get(), [this](short) { on_accept(); });

  for (std::size_t i = 0; i < loops_.size(); ++i) {
    loops_[i]->thread = std::thread(&IngestGateway::io_thread, this, i);
  }
  for (auto& shard : shards_) {
    shard->consumer =
        std::thread(&IngestGateway::consumer_thread, this, std::ref(*shard));
  }
  running_ = true;
  return Status::ok_status();
}

void IngestGateway::io_thread(std::size_t loop_idx) {
  loops_[loop_idx]->loop.run();
}

void IngestGateway::on_udp_readable(std::size_t loop_idx) {
  IoLoop& lp = *loops_[loop_idx];
  mmsghdr msgs[kRecvBatch];
  iovec iovs[kRecvBatch];
  static thread_local std::vector<std::uint8_t> bufs(kRecvBatch * kMaxDatagram);
  // Per-shard routing buckets, reused sweep to sweep: one try_push_batch
  // (one lock + one notify) per shard per recvmmsg sweep.
  static thread_local std::vector<std::vector<syslog::ReceivedLine>> buckets;
  const std::uint32_t nshards = options_.shards;
  if (buckets.size() < nshards) buckets.resize(nshards);
  for (;;) {
    std::memset(msgs, 0, sizeof(msgs));
    for (int i = 0; i < kRecvBatch; ++i) {
      iovs[i].iov_base = bufs.data() + static_cast<std::size_t>(i) * kMaxDatagram;
      iovs[i].iov_len = kMaxDatagram;
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
    }
    const int n = ::recvmmsg(lp.udp.get(), msgs, kRecvBatch, 0, nullptr);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: drained
    }
    // Peel markers out (rare, end-of-replay only), stamp each line's
    // arrival with this socket's cursor, route it to the owning shard's
    // bucket by the stable link hash, then hand each bucket to its queue
    // as one batch. Stamping precedes routing on purpose: the cursor's
    // monotonic clamp runs over the socket's arrival order (the ingress
    // ordering domain), never over a shard's routed subset — a line
    // clamped here is clamped identically for every shard count.
    // shard_of_line is the IO-thread half of the partition invariant:
    // every event for a link lands on the shard whose engine owns that
    // link's state.
    for (std::uint32_t s = 0; s < nshards; ++s) buckets[s].clear();
    for (int i = 0; i < n; ++i) {
      const std::string_view payload(
          reinterpret_cast<const char*>(iovs[i].iov_base), msgs[i].msg_len);
      if (payload == kReplayEndMarker) {
        ++lp.io.end_markers;
        {
          sync::MutexLock lock(done_mu_);
          ++markers_seen_;
        }
        done_cv_.notify_all();
        continue;
      }
      // One parse per datagram, shared by the cursor and the router.
      const Result<syslog::Message> msg = syslog::parse_message(payload);
      syslog::ReceivedLine rec;
      rec.received_at = lp.cursor.arrival_of_parsed(msg);
      rec.line.assign(payload);
      buckets[shard_map_.shard_of_parsed(msg, payload)].push_back(
          std::move(rec));
    }
    for (std::uint32_t s = 0; s < nshards; ++s) {
      std::vector<syslog::ReceivedLine>& bucket = buckets[s];
      if (bucket.empty()) continue;
      lp.io.syslog_datagrams += bucket.size();
      const std::size_t taken =
          shards_[s]->syslog_queue.try_push_batch(bucket.data(), bucket.size());
      lp.io.syslog_enqueued += taken;
      lp.io.syslog_queue_drops += bucket.size() - taken;
    }
    if (n < kRecvBatch) return;
  }
}

void IngestGateway::on_accept() {
  // Runs on loop 0 (the listener's loop). Accepted connections are dealt
  // round-robin across all IO loops; the handoff is an EventLoop::post so
  // the target loop adds the fd to its own poll set on its own thread.
  for (;;) {
    const int fd = ::accept(listener_.get(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (or transient accept error): wait for next event
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = Fd(fd);
    (void)set_nonblocking(conn->fd);
    const std::size_t target = next_conn_loop_;
    next_conn_loop_ = (next_conn_loop_ + 1) % loops_.size();
    conn->loop = target;
    ++loops_[0]->io.connections_accepted;
    {
      sync::MutexLock lock(done_mu_);
      ++conns_accepted_;
      ++conns_open_;
    }
    done_cv_.notify_all();
    if (target == 0) {
      register_connection(0, std::move(conn));
    } else {
      loops_[target]->loop.post(
          [this, target, c = std::move(conn)]() mutable {
            register_connection(target, std::move(c));
          });
    }
  }
}

void IngestGateway::register_connection(std::size_t loop_idx,
                                        std::shared_ptr<Connection> conn) {
  IoLoop& lp = *loops_[loop_idx];
  const int fd = conn->fd.get();
  Connection* raw = conn.get();
  lp.connections.push_back(std::move(conn));
  lp.loop.add(fd, [this, loop_idx, raw](short revents) {
    on_connection_readable(loop_idx, *raw, revents);
  });
}

void IngestGateway::on_connection_readable(std::size_t loop_idx,
                                           Connection& conn,
                                           short /*revents*/) {
  IoLoop& lp = *loops_[loop_idx];
  bool closed = false;
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(conn.fd.get(), buf, sizeof(buf));
    if (n > 0) {
      conn.decoder.feed(std::span<const std::uint8_t>(buf, static_cast<std::size_t>(n)));
      extract_frames(lp, conn);
      // Paused: leave further bytes in the socket buffer so TCP flow
      // control reaches the sender. Corrupt: no point reading more.
      if (conn.paused || conn.decoder.corrupt()) break;
      continue;
    }
    if (n == 0) {
      closed = true;  // orderly FIN
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    closed = true;  // ECONNRESET et al. — the fault injector's abortive close
    break;
  }
  if (conn.decoder.corrupt()) {
    ++lp.io.lsp_corrupt_streams;
    closed = true;
  }
  if (closed) close_connection(loop_idx, conn.fd.get());
}

void IngestGateway::extract_frames(IoLoop& lp, Connection& conn) {
  const std::uint32_t nshards = options_.shards;
  for (;;) {
    if (any_lsp_queue_above_high()) {
      if (!conn.paused) {
        conn.paused = true;
        ++lp.io.backpressure_pauses;
        paused_conns_.fetch_add(1, std::memory_order_relaxed);
        lp.loop.set_want_read(conn.fd.get(), false);
      }
      return;
    }
    const auto payload = conn.decoder.next();
    if (!payload) return;
    ++lp.io.lsp_frames;
    auto record = decode_lsp_payload(*payload);
    if (!record) {
      ++lp.io.lsp_decode_errors;
      continue;
    }
    // Broadcast: every shard's IS-IS extractor consumes the full LSP
    // stream (pair state spans both endpoints of a link); the ownership
    // filter is applied per transition inside the engine. The monotonic
    // out-of-order drop (mirroring EventMux's policy — never fires on an
    // in-order replay, protects the trackers when reconnect races
    // interleave old frames behind new ones) is decided HERE, once, under
    // the gateway-wide order lock, and the kept record is pushed to every
    // shard before the lock drops: with concurrent connections on
    // different IO threads, each shard queue still carries the identical
    // frame sequence, so per-shard engines cannot diverge. Copy to all
    // shards but the last, move into the last. push_wait, not try_push:
    // TCP frames are the reliable source — the watermark check above
    // bounds occupancy, and the blocking path only triggers when several
    // IO loops overshoot it at once. A refusal means a closed queue
    // (shutdown) — the rest of the stream is moot then anyway.
    bool dropped = false;
    bool queue_closed = false;
    {
      sync::MutexLock order(lsp_order_mu_);
      if (have_lsp_ && record->received_at < last_lsp_arrival_) {
        dropped = true;
      } else {
        last_lsp_arrival_ = record->received_at;
        have_lsp_ = true;
        for (std::uint32_t s = 0; s + 1 < nshards; ++s) {
          isis::LspRecord copy = *record;
          // push_wait takes the shard queue's WaitSet lock while we hold
          // lsp_order_mu_ — the one call-mediated edge in the gateway.
          // netfail-audit: locks(mu)
          if (!shards_[s]->lsp_queue.push_wait(std::move(copy))) {
            queue_closed = true;
            break;
          }
        }
        if (!queue_closed &&
            !shards_[nshards - 1]->lsp_queue.push_wait(std::move(*record))) {
          queue_closed = true;
        }
      }
    }
    if (queue_closed) return;
    if (dropped) ++lp.io.lsp_out_of_order;
  }
}

void IngestGateway::close_connection(std::size_t loop_idx, int fd) {
  IoLoop& lp = *loops_[loop_idx];
  for (auto it = lp.connections.begin(); it != lp.connections.end(); ++it) {
    Connection& conn = **it;
    if (conn.fd.get() != fd) continue;
    if (conn.decoder.corrupt()) {
      (void)conn.decoder.reset();
    } else if (conn.decoder.buffered() > 0) {
      ++lp.io.lsp_torn_tails;  // connection cut mid-frame
    }
    if (conn.paused) paused_conns_.fetch_sub(1, std::memory_order_relaxed);
    lp.loop.remove(fd);
    ++lp.io.connections_closed;
    lp.connections.erase(it);
    {
      sync::MutexLock lock(done_mu_);
      --conns_open_;
    }
    done_cv_.notify_all();
    return;
  }
}

bool IngestGateway::any_lsp_queue_above_high() const {
  for (const auto& shard : shards_) {
    if (shard->lsp_queue.above_high_watermark(high_watermark_)) return true;
  }
  return false;
}

bool IngestGateway::all_lsp_queues_below_low() const {
  for (const auto& shard : shards_) {
    if (!shard->lsp_queue.below_low_watermark(low_watermark_)) return false;
  }
  return true;
}

void IngestGateway::wake_all_loops() {
  for (auto& lp : loops_) lp->loop.wake();
}

void IngestGateway::maybe_resume_connections(std::size_t loop_idx) {
  IoLoop& lp = *loops_[loop_idx];
  if (paused_conns_.load(std::memory_order_relaxed) == 0) return;
  // ALL shards below low, mirroring the ANY-above-high pause: a resumed
  // connection broadcasts into every queue, so one hot shard must keep
  // every producer paused or the slow consumer falls further behind.
  if (!all_lsp_queues_below_low()) return;
  // Drain each paused connection's decoder backlog first; only re-arm the
  // socket if that did not immediately push us back above the watermark.
  std::vector<int> dead;
  for (auto& conn : lp.connections) {
    if (!conn->paused) continue;
    conn->paused = false;
    paused_conns_.fetch_sub(1, std::memory_order_relaxed);
    extract_frames(lp, *conn);
    if (conn->decoder.corrupt()) {
      ++lp.io.lsp_corrupt_streams;
      dead.push_back(conn->fd.get());
      continue;
    }
    if (!conn->paused) lp.loop.set_want_read(conn->fd.get(), true);
  }
  for (const int fd : dead) close_connection(loop_idx, fd);
}

void IngestGateway::consumer_thread(Shard& shard) {
  std::vector<syslog::ReceivedLine> lines;
  std::vector<isis::LspRecord> records;
  lines.reserve(kDrainBatch);
  records.reserve(kDrainBatch);

  metrics::Counter& fed_syslog = metrics::global().counter(
      shard_metric("net.consumer.syslog_fed", shard.index));
  metrics::Counter& fed_lsp = metrics::global().counter(
      shard_metric("net.consumer.lsp_fed", shard.index));

  sync::UniqueLock lock(shard.ws.mu);
  for (;;) {
    // Live-snapshot handshake: answered here, between drain batches, so the
    // deep copy always lands on an event boundary (one branch per batch —
    // off the per-event hot path).
    if (shard.snapshot_requested) {
      shard.snapshot_out = shard.engine->checkpoint();
      shard.snapshot_requested = false;
      shard.ws.cv.notify_all();
    }
    lines.clear();
    records.clear();
    while (lines.size() < kDrainBatch && !shard.syslog_queue.empty_locked()) {
      lines.push_back(shard.syslog_queue.pop_locked());
    }
    while (records.size() < kDrainBatch && !shard.lsp_queue.empty_locked()) {
      records.push_back(shard.lsp_queue.pop_locked());
    }
    if (lines.empty() && records.empty()) {
      if (shard.syslog_queue.closed_locked() &&
          shard.lsp_queue.closed_locked()) {
        break;
      }
      shard.consumer_idle = true;
      shard.ws.cv.notify_all();  // producers blocked in push_wait
      shard.ws.cv.wait(lock);
      shard.consumer_idle = false;
      continue;
    }
    lock.unlock();

    // Lines arrive pre-stamped (IO-thread cursor) and LSP records
    // pre-filtered (broadcast-time order guard): the consumer is a pure
    // feed loop, so nothing here can make one shard's view diverge from
    // another's.
    for (const syslog::ReceivedLine& rec : lines) {
      shard.engine->feed_syslog(rec);
      fed_syslog.inc();
      if (options_.consumer_slowdown.count() > 0) {
        std::this_thread::sleep_for(options_.consumer_slowdown);
      }
    }
    for (const isis::LspRecord& record : records) {
      shard.engine->feed_lsp(record);
      fed_lsp.inc();
      if (options_.consumer_slowdown.count() > 0) {
        std::this_thread::sleep_for(options_.consumer_slowdown);
      }
    }

    // We may just have drained below the low watermark: nudge every IO
    // loop (resume requires ALL queues low, and the paused connection may
    // live on any of them).
    if (paused_conns_.load(std::memory_order_relaxed) > 0 &&
        shard.lsp_queue.below_low_watermark(low_watermark_)) {
      wake_all_loops();
    }
    lock.lock();
  }
  // Queues closed and drained: the engine is final. Take the final
  // checkpoint while still holding the lock and flip consumer_done, so a
  // snapshot request racing the shutdown is answered with the final state
  // instead of hanging on a thread that is gone.
  shard.final_checkpoint = shard.engine->checkpoint();
  shard.snapshot_requested = false;
  shard.consumer_done = true;
  shard.ws.cv.notify_all();
  lock.unlock();
  shard.engine->finish();
}

std::vector<stream::Checkpoint> IngestGateway::snapshot_engines() {
  std::vector<stream::Checkpoint> out;
  out.reserve(shards_.size());
  for (auto& sp : shards_) {
    Shard& shard = *sp;
    sync::UniqueLock lock(shard.ws.mu);
    if (shard.consumer_done) {
      // The consumer exited: its final (pre-finish) checkpoint IS the
      // resumable state — re-checkpointing the finished engine would bake
      // the drain into the snapshot.
      out.push_back(shard.final_checkpoint);
      continue;
    }
    if (!running_) {
      // Pre-start: no consumer thread exists, the engine is ours to read.
      out.push_back(shard.engine->checkpoint());
      continue;
    }
    shard.snapshot_requested = true;
    shard.ws.cv.notify_all();
    while (shard.snapshot_requested && !shard.consumer_done) {
      shard.ws.cv.wait(lock);
    }
    out.push_back(shard.consumer_done ? shard.final_checkpoint
                                      : shard.snapshot_out);
  }
  return out;
}

bool IngestGateway::replay_complete(std::uint64_t min_connections) {
  {
    sync::MutexLock lock(done_mu_);
    if (markers_seen_ == 0 || conns_accepted_ < min_connections ||
        conns_open_ != 0) {
      return false;
    }
  }
  // Per-shard state under each shard's own lock — never while holding
  // done_mu_, so there is no ordering edge between the two mutexes.
  for (const auto& sp : shards_) {
    Shard& shard = *sp;
    sync::MutexLock lock(shard.ws.mu);
    if (!shard.syslog_queue.empty_locked() || !shard.lsp_queue.empty_locked() ||
        !shard.consumer_idle) {
      return false;
    }
  }
  return true;
}

bool IngestGateway::wait_replay_complete(std::chrono::milliseconds timeout,
                                         std::uint64_t min_connections) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  // Periodic re-check (~10ms) instead of one shared condition variable:
  // the predicate spans done_mu_ plus every shard's wait set, and a timed
  // poll keeps those locks strictly un-nested.
  for (;;) {
    if (replay_complete(min_connections)) return true;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return replay_complete(min_connections);
    const auto next = std::min(deadline, now + std::chrono::milliseconds(10));
    sync::UniqueLock lock(done_mu_);
    (void)done_cv_.wait_until(lock, next);
  }
}

void IngestGateway::request_stop() {
  for (auto& lp : loops_) lp->loop.stop();
}

void IngestGateway::stop() {
  if (stopped_) return;
  stopped_ = true;
  if (!running_) return;

  for (auto& lp : loops_) lp->loop.stop();
  for (auto& lp : loops_) {
    if (lp->thread.joinable()) lp->thread.join();
  }
  // A registration posted to a loop that stopped before running it would
  // otherwise leave the Connection unregistered forever (conns_open_ never
  // settles, its fd never enters the shutdown sweep). The loops are joined,
  // so running the leftovers here is single-threaded and safe.
  for (auto& lp : loops_) lp->loop.drain_posted();
  // Connections still open at shutdown: account their partial tails the
  // same way a mid-frame cut is accounted.
  for (auto& lp : loops_) {
    for (const auto& conn : lp->connections) {
      if (!conn->decoder.corrupt() && conn->decoder.buffered() > 0) {
        ++lp->io.lsp_torn_tails;
      }
    }
  }
  // No producers remain: close the queues and let each consumer drain
  // whatever is buffered through its engine before checkpointing.
  for (auto& shard : shards_) {
    shard->syslog_queue.close();
    shard->lsp_queue.close();
  }
  for (auto& shard : shards_) {
    if (shard->consumer.joinable()) shard->consumer.join();
  }

  for (auto& lp : loops_) {
    lp->connections.clear();
    lp->udp.reset();
  }
  listener_.reset();
  running_ = false;

  counters_ = GatewayCounters{};
  for (const auto& lp : loops_) add_counters(counters_, lp->io);

  metrics::Registry& m = metrics::global();
  m.counter("net.syslog.datagrams").inc(counters_.syslog_datagrams);
  m.counter("net.syslog.queue_drops").inc(counters_.syslog_queue_drops);
  m.counter("net.lsp.frames").inc(counters_.lsp_frames);
  m.counter("net.lsp.torn_tails").inc(counters_.lsp_torn_tails);
  m.counter("net.lsp.out_of_order").inc(counters_.lsp_out_of_order);
  m.counter("net.connections.accepted").inc(counters_.connections_accepted);
  m.counter("net.backpressure.pauses").inc(counters_.backpressure_pauses);
  m.counter("net.udp.sockets").inc(counters_.udp_sockets);
}

stream::StreamEngine& IngestGateway::engine(std::uint32_t shard) {
  NETFAIL_ASSERT(shard < shards_.size(), "shard index out of range");
  return *shards_[shard]->engine;
}

const stream::StreamEngine& IngestGateway::engine(std::uint32_t shard) const {
  NETFAIL_ASSERT(shard < shards_.size(), "shard index out of range");
  return *shards_[shard]->engine;
}

const stream::Checkpoint& IngestGateway::final_checkpoint(
    std::uint32_t shard) const {
  NETFAIL_ASSERT(stopped_, "final checkpoint is taken during stop()");
  NETFAIL_ASSERT(shard < shards_.size(), "shard index out of range");
  return shards_[shard]->final_checkpoint;
}

std::uint64_t IngestGateway::final_alerts() const {
  NETFAIL_ASSERT(stopped_, "final_alerts() is a post-stop() snapshot");
  std::uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->final_checkpoint.alerts_emitted();
  }
  return total;
}

GatewayCounters IngestGateway::counters() const {
  // Per-loop and per-shard counters are written lock-free on their owning
  // threads; the aggregate is only coherent once all of them have joined.
  NETFAIL_ASSERT(!running_, "counters() is a post-stop() snapshot");
  return counters_;
}

}  // namespace netfail::net
