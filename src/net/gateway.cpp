#include "src/net/gateway.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <span>
#include <utility>

#include "src/common/assert.hpp"
#include "src/common/metrics.hpp"
#include "src/common/sync.hpp"
#include "src/syslog/collector.hpp"

namespace netfail::net {
namespace {

// recvmmsg batch geometry. RFC 3164 caps a packet at 1024 bytes; 2 KiB per
// slot leaves room for the simulator's longest rendered lines, and 64 slots
// amortize the syscall enough to clear the ingest throughput target on one
// core.
constexpr int kRecvBatch = 64;
constexpr std::size_t kMaxDatagram = 2048;

// How many items the consumer moves out of a queue per lock acquisition.
constexpr std::size_t kDrainBatch = 256;

}  // namespace

IngestGateway::IngestGateway(const LinkCensus& census, GatewayOptions options)
    : census_(&census),
      options_(std::move(options)),
      syslog_queue_(ws_, options_.syslog_queue_capacity,
                    &metrics::global().gauge("net.syslog_queue.depth"),
                    &metrics::global().gauge("net.syslog_queue.peak")),
      lsp_queue_(ws_, options_.lsp_queue_capacity,
                 &metrics::global().gauge("net.lsp_queue.depth"),
                 &metrics::global().gauge("net.lsp_queue.peak")),
      engine_(std::make_unique<stream::StreamEngine>(census, options_.engine)) {
  high_watermark_ = options_.lsp_high_watermark != 0
                        ? options_.lsp_high_watermark
                        : options_.lsp_queue_capacity * 3 / 4;
  low_watermark_ = options_.lsp_low_watermark != 0
                       ? options_.lsp_low_watermark
                       : options_.lsp_queue_capacity / 4;
  NETFAIL_ASSERT(low_watermark_ < high_watermark_ &&
                     high_watermark_ <= options_.lsp_queue_capacity,
                 "lsp watermarks must satisfy low < high <= capacity");
  if (options_.engine_setup) options_.engine_setup(*engine_);
}

IngestGateway::~IngestGateway() { stop(); }

Status IngestGateway::start() {
  NETFAIL_ASSERT(!running_ && !stopped_, "gateway started twice");
  auto udp = udp_bind(options_.bind_host, options_.syslog_port);
  if (!udp) return Status(udp.error());
  auto listener = tcp_listen(options_.bind_host, options_.lsp_port, 16);
  if (!listener) return Status(listener.error());
  udp_ = std::move(*udp);
  listener_ = std::move(*listener);

  (void)set_recv_buffer(udp_, options_.recv_buffer_bytes);
  if (Status st = set_nonblocking(udp_); !st.ok()) return st;
  if (Status st = set_nonblocking(listener_); !st.ok()) return st;

  auto sport = local_port(udp_);
  if (!sport) return Status(sport.error());
  auto lport = local_port(listener_);
  if (!lport) return Status(lport.error());
  syslog_port_ = *sport;
  lsp_port_ = *lport;

  loop_.add(udp_.get(), [this](short) { on_udp_readable(); });
  loop_.add(listener_.get(), [this](short) { on_accept(); });
  loop_.set_on_wake([this] { maybe_resume_connections(); });

  io_ = std::thread(&IngestGateway::io_thread, this);
  consumer_ = std::thread(&IngestGateway::consumer_thread, this);
  running_ = true;
  return Status::ok_status();
}

void IngestGateway::io_thread() { loop_.run(); }

void IngestGateway::on_udp_readable() {
  mmsghdr msgs[kRecvBatch];
  iovec iovs[kRecvBatch];
  static thread_local std::vector<std::uint8_t> bufs(kRecvBatch * kMaxDatagram);
  for (;;) {
    std::memset(msgs, 0, sizeof(msgs));
    for (int i = 0; i < kRecvBatch; ++i) {
      iovs[i].iov_base = bufs.data() + static_cast<std::size_t>(i) * kMaxDatagram;
      iovs[i].iov_len = kMaxDatagram;
      msgs[i].msg_hdr.msg_iov = &iovs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
    }
    const int n = ::recvmmsg(udp_.get(), msgs, kRecvBatch, 0, nullptr);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: drained
    }
    // Peel markers out (rare, end-of-replay only), then hand the rest to
    // the queue as one batch: a single lock + notify per recvmmsg sweep
    // instead of per datagram.
    std::string lines[kRecvBatch];
    std::size_t count = 0;
    for (int i = 0; i < n; ++i) {
      const std::string_view payload(
          reinterpret_cast<const char*>(iovs[i].iov_base), msgs[i].msg_len);
      if (payload == kReplayEndMarker) {
        ++counters_.end_markers;
        {
          sync::MutexLock lock(ws_.mu);
          ++markers_seen_;
        }
        ws_.cv.notify_all();
        continue;
      }
      lines[count++] = std::string(payload);
    }
    counters_.syslog_datagrams += count;
    const std::size_t taken = syslog_queue_.try_push_batch(lines, count);
    counters_.syslog_enqueued += taken;
    counters_.syslog_queue_drops += count - taken;
    if (n < kRecvBatch) return;
  }
}

void IngestGateway::on_accept() {
  for (;;) {
    const int fd = ::accept(listener_.get(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (or transient accept error): wait for next event
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = Fd(fd);
    (void)set_nonblocking(conn->fd);
    Connection* raw = conn.get();
    connections_.push_back(std::move(conn));
    ++counters_.connections_accepted;
    loop_.add(fd, [this, raw](short revents) {
      on_connection_readable(*raw, revents);
    });
    {
      sync::MutexLock lock(ws_.mu);
      ++conns_accepted_;
      ++conns_open_;
    }
    ws_.cv.notify_all();
  }
}

void IngestGateway::on_connection_readable(Connection& conn, short /*revents*/) {
  bool closed = false;
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::read(conn.fd.get(), buf, sizeof(buf));
    if (n > 0) {
      conn.decoder.feed(std::span<const std::uint8_t>(buf, static_cast<std::size_t>(n)));
      extract_frames(conn);
      // Paused: leave further bytes in the socket buffer so TCP flow
      // control reaches the sender. Corrupt: no point reading more.
      if (conn.paused || conn.decoder.corrupt()) break;
      continue;
    }
    if (n == 0) {
      closed = true;  // orderly FIN
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    closed = true;  // ECONNRESET et al. — the fault injector's abortive close
    break;
  }
  if (conn.decoder.corrupt()) {
    ++counters_.lsp_corrupt_streams;
    closed = true;
  }
  if (closed) close_connection(conn.fd.get());
}

void IngestGateway::extract_frames(Connection& conn) {
  for (;;) {
    if (lsp_queue_.above_high_watermark(high_watermark_)) {
      if (!conn.paused) {
        conn.paused = true;
        ++counters_.backpressure_pauses;
        paused_conns_.fetch_add(1, std::memory_order_relaxed);
        loop_.set_want_read(conn.fd.get(), false);
      }
      return;
    }
    const auto payload = conn.decoder.next();
    if (!payload) return;
    ++counters_.lsp_frames;
    auto record = decode_lsp_payload(*payload);
    if (!record) {
      ++counters_.lsp_decode_errors;
      continue;
    }
    // Cannot overflow: occupancy is re-checked against the high watermark
    // before every push, so the only refusal is a closed (shutting down)
    // queue — then the rest of the stream is moot anyway.
    if (!lsp_queue_.try_push(std::move(*record))) return;
  }
}

void IngestGateway::close_connection(int fd) {
  for (auto it = connections_.begin(); it != connections_.end(); ++it) {
    Connection& conn = **it;
    if (conn.fd.get() != fd) continue;
    if (conn.decoder.corrupt()) {
      (void)conn.decoder.reset();
    } else if (conn.decoder.buffered() > 0) {
      ++counters_.lsp_torn_tails;  // connection cut mid-frame
    }
    if (conn.paused) paused_conns_.fetch_sub(1, std::memory_order_relaxed);
    loop_.remove(fd);
    ++counters_.connections_closed;
    connections_.erase(it);
    {
      sync::MutexLock lock(ws_.mu);
      --conns_open_;
    }
    ws_.cv.notify_all();
    return;
  }
}

void IngestGateway::maybe_resume_connections() {
  if (paused_conns_.load(std::memory_order_relaxed) == 0) return;
  if (!lsp_queue_.below_low_watermark(low_watermark_)) return;
  // Drain each paused connection's decoder backlog first; only re-arm the
  // socket if that did not immediately push us back above the watermark.
  std::vector<int> dead;
  for (auto& conn : connections_) {
    if (!conn->paused) continue;
    conn->paused = false;
    paused_conns_.fetch_sub(1, std::memory_order_relaxed);
    extract_frames(*conn);
    if (conn->decoder.corrupt()) {
      ++counters_.lsp_corrupt_streams;
      dead.push_back(conn->fd.get());
      continue;
    }
    if (!conn->paused) loop_.set_want_read(conn->fd.get(), true);
  }
  for (const int fd : dead) close_connection(fd);
}

void IngestGateway::consumer_thread() {
  syslog::ArrivalCursor cursor(options_.capture_start);
  TimePoint last_lsp_arrival;
  bool have_lsp = false;
  std::uint64_t out_of_order = 0;
  std::vector<std::string> lines;
  std::vector<isis::LspRecord> records;
  lines.reserve(kDrainBatch);
  records.reserve(kDrainBatch);

  metrics::Counter& fed_syslog =
      metrics::global().counter("net.consumer.syslog_fed");
  metrics::Counter& fed_lsp = metrics::global().counter("net.consumer.lsp_fed");

  sync::UniqueLock lock(ws_.mu);
  for (;;) {
    lines.clear();
    records.clear();
    while (lines.size() < kDrainBatch && !syslog_queue_.empty_locked()) {
      lines.push_back(syslog_queue_.pop_locked());
    }
    while (records.size() < kDrainBatch && !lsp_queue_.empty_locked()) {
      records.push_back(lsp_queue_.pop_locked());
    }
    if (lines.empty() && records.empty()) {
      if (syslog_queue_.closed_locked() && lsp_queue_.closed_locked()) break;
      consumer_idle_ = true;
      ws_.cv.notify_all();  // wait_replay_complete() watchers
      ws_.cv.wait(lock);
      consumer_idle_ = false;
      continue;
    }
    lock.unlock();

    for (std::string& line : lines) {
      syslog::ReceivedLine rec;
      rec.received_at = cursor.arrival_of(line);
      rec.line = std::move(line);
      engine_->feed_syslog(rec);
      fed_syslog.inc();
      if (options_.consumer_slowdown.count() > 0) {
        std::this_thread::sleep_for(options_.consumer_slowdown);
      }
    }
    for (isis::LspRecord& record : records) {
      // Per-source monotonic guard, mirroring EventMux's out-of-order drop
      // policy. Never fires on an in-order replay; protects the trackers
      // when reconnect races interleave old frames behind new ones.
      if (have_lsp && record.received_at < last_lsp_arrival) {
        ++out_of_order;
        continue;
      }
      last_lsp_arrival = record.received_at;
      have_lsp = true;
      engine_->feed_lsp(record);
      fed_lsp.inc();
      if (options_.consumer_slowdown.count() > 0) {
        std::this_thread::sleep_for(options_.consumer_slowdown);
      }
    }

    // We may just have drained below the low watermark: nudge the IO loop
    // so paused connections resume reading.
    if (paused_conns_.load(std::memory_order_relaxed) > 0 &&
        lsp_queue_.below_low_watermark(low_watermark_)) {
      loop_.wake();
    }
    lock.lock();
  }
  lock.unlock();

  counters_.lsp_out_of_order = out_of_order;  // consumer-owned field
  final_checkpoint_ = engine_->checkpoint();
  engine_->finish();
}

bool IngestGateway::wait_replay_complete(std::chrono::milliseconds timeout,
                                         std::uint64_t min_connections) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  // Explicit deadline loop (not a lambda predicate): the thread-safety
  // analysis cannot see a capability held inside a lambda body.
  sync::UniqueLock lock(ws_.mu);
  for (;;) {
    const bool complete = markers_seen_ > 0 &&
                          conns_accepted_ >= min_connections &&
                          conns_open_ == 0 && syslog_queue_.empty_locked() &&
                          lsp_queue_.empty_locked() && consumer_idle_;
    if (complete) return true;
    if (ws_.cv.wait_until(lock, deadline) == std::cv_status::timeout) {
      return markers_seen_ > 0 && conns_accepted_ >= min_connections &&
             conns_open_ == 0 && syslog_queue_.empty_locked() &&
             lsp_queue_.empty_locked() && consumer_idle_;
    }
  }
}

void IngestGateway::request_stop() { loop_.stop(); }

void IngestGateway::stop() {
  if (stopped_) return;
  stopped_ = true;
  if (!running_) return;

  loop_.stop();
  io_.join();
  // Connections still open at shutdown: account their partial tails the
  // same way a mid-frame cut is accounted.
  for (const auto& conn : connections_) {
    if (!conn->decoder.corrupt() && conn->decoder.buffered() > 0) {
      ++counters_.lsp_torn_tails;
    }
  }
  // No producers remain: close the queues and let the consumer drain
  // whatever is buffered through the engine before checkpointing.
  syslog_queue_.close();
  lsp_queue_.close();
  consumer_.join();

  connections_.clear();
  udp_.reset();
  listener_.reset();
  running_ = false;

  metrics::Registry& m = metrics::global();
  m.counter("net.syslog.datagrams").inc(counters_.syslog_datagrams);
  m.counter("net.syslog.queue_drops").inc(counters_.syslog_queue_drops);
  m.counter("net.lsp.frames").inc(counters_.lsp_frames);
  m.counter("net.lsp.torn_tails").inc(counters_.lsp_torn_tails);
  m.counter("net.lsp.out_of_order").inc(counters_.lsp_out_of_order);
  m.counter("net.connections.accepted").inc(counters_.connections_accepted);
  m.counter("net.backpressure.pauses").inc(counters_.backpressure_pauses);
}

stream::StreamEngine& IngestGateway::engine() {
  NETFAIL_ASSERT(engine_ != nullptr, "gateway engine accessed before start");
  return *engine_;
}

const stream::StreamEngine& IngestGateway::engine() const {
  NETFAIL_ASSERT(engine_ != nullptr, "gateway engine accessed before start");
  return *engine_;
}

const stream::Checkpoint& IngestGateway::final_checkpoint() const {
  NETFAIL_ASSERT(stopped_, "final checkpoint is taken during stop()");
  return final_checkpoint_;
}

std::uint64_t IngestGateway::final_alerts() const {
  NETFAIL_ASSERT(stopped_, "final_alerts() is a post-stop() snapshot");
  return final_checkpoint_.alerts_emitted();
}

GatewayCounters IngestGateway::counters() const {
  // counters_ fields are written from the io and consumer threads with no
  // lock; the snapshot is only coherent once both have joined.
  NETFAIL_ASSERT(!running_, "counters() is a post-stop() snapshot");
  return counters_;
}

}  // namespace netfail::net
