#include "src/net/replay.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <set>
#include <thread>
#include <utility>

#include "src/net/gateway.hpp"

namespace netfail::net {
namespace {

// Frames are coalesced into writes of roughly this size: one syscall per
// ~20 LSPs instead of one per frame.
constexpr std::size_t kTcpFlushBytes = 32 * 1024;

// Datagrams per sendmmsg(2) batch. Matches the pacing quantum in
// replay_capture so paced replays flush exactly one batch per sleep.
constexpr std::size_t kUdpBatch = 32;

Error errno_error(const std::string& what) {
  return Error{ErrorCode::kInternal, what + ": " + std::strerror(errno)};
}

}  // namespace

FaultyChannel::FaultyChannel(const ReplayOptions& options, FaultParams faults)
    : options_(options), faults_(faults), rng_(faults.seed) {}

Status FaultyChannel::open() {
  auto udp = udp_connect(options_.target_host, options_.syslog_port);
  if (!udp) return Status(udp.error());
  udp_ = std::move(*udp);
  return Status::ok_status();
}

Status FaultyChannel::connect_tcp() {
  auto tcp = tcp_connect(options_.target_host, options_.lsp_port);
  if (!tcp) return Status(tcp.error());
  tcp_ = std::move(*tcp);
  (void)set_nodelay(tcp_);
  return Status::ok_status();
}

void FaultyChannel::set_reset_points(std::vector<std::uint64_t> points) {
  reset_points_ = std::move(points);
  std::sort(reset_points_.begin(), reset_points_.end());
  next_reset_ = 0;
}

Status FaultyChannel::send_datagram(std::string_view payload) {
  // Counted as sent now; the bytes leave in the next flush. Send order is
  // exactly batch order, so the fault model's sequencing is preserved.
  udp_batch_.emplace_back(payload);
  ++stats_.syslog_sent;
  if (udp_batch_.size() >= kUdpBatch) return flush_udp();
  return Status::ok_status();
}

Status FaultyChannel::flush_udp() {
  if (udp_batch_.empty()) return Status::ok_status();
  std::vector<iovec> iov(udp_batch_.size());
  std::vector<mmsghdr> msgs(udp_batch_.size());
  for (std::size_t i = 0; i < udp_batch_.size(); ++i) {
    iov[i].iov_base = udp_batch_[i].data();
    iov[i].iov_len = udp_batch_[i].size();
    std::memset(&msgs[i], 0, sizeof(msgs[i]));
    msgs[i].msg_hdr.msg_iov = &iov[i];
    msgs[i].msg_hdr.msg_iovlen = 1;
  }
  std::size_t done = 0;
  while (done < msgs.size()) {
    const int n = ::sendmmsg(udp_.get(), msgs.data() + done,
                             static_cast<unsigned>(msgs.size() - done), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status(errno_error("sendmmsg udp batch"));
    }
    done += static_cast<std::size_t>(n);
  }
  udp_batch_.clear();
  return Status::ok_status();
}

Status FaultyChannel::send_raw_datagram(std::string_view payload) {
  // Raw datagrams (end markers) must hit the wire after everything batched.
  if (Status st = flush_udp(); !st.ok()) return st;
  for (;;) {
    const ssize_t n = ::send(udp_.get(), payload.data(), payload.size(), 0);
    if (n >= 0) return Status::ok_status();
    if (errno == EINTR) continue;
    return Status(errno_error("send udp datagram"));
  }
}

Status FaultyChannel::send_syslog(const std::string& line) {
  if (rng_.bernoulli(faults_.udp_loss)) {
    ++stats_.syslog_lost;
    return Status::ok_status();
  }
  if (held_valid_) {
    // Complete the adjacent swap: this message jumps the queue.
    if (Status st = send_datagram(line); !st.ok()) return st;
    held_valid_ = false;
    ++stats_.syslog_reordered;
    if (Status st = send_datagram(held_); !st.ok()) return st;
  } else if (rng_.bernoulli(faults_.udp_reorder)) {
    held_ = line;  // hold back until the next surviving message passes it
    held_valid_ = true;
    return Status::ok_status();
  } else {
    if (Status st = send_datagram(line); !st.ok()) return st;
  }
  if (rng_.bernoulli(faults_.udp_duplicate)) {
    ++stats_.syslog_duplicated;
    if (Status st = send_datagram(line); !st.ok()) return st;
  }
  return Status::ok_status();
}

Status FaultyChannel::flush_tcp(std::size_t watermark) {
  if (tcp_buf_.size() <= watermark) return Status::ok_status();
  if (!tcp_.valid()) {
    if (Status st = connect_tcp(); !st.ok()) return st;
  }
  std::size_t off = 0;
  while (off < tcp_buf_.size()) {
    const ssize_t n = ::send(tcp_.get(), tcp_buf_.data() + off,
                             tcp_buf_.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status(errno_error("send tcp frame"));
    }
    off += static_cast<std::size_t>(n);
  }
  tcp_buf_.clear();
  return Status::ok_status();
}

Status FaultyChannel::send_lsp(const isis::LspRecord& record) {
  if (next_reset_ < reset_points_.size() &&
      reset_points_[next_reset_] == frame_index_) {
    ++next_reset_;
    // Push everything written so far to the kernel, then RST: whatever the
    // receiver has not yet read out of its socket buffer is discarded —
    // a mid-stream cut at an arbitrary byte, like a listener crash.
    if (Status st = flush_tcp(0); !st.ok()) return st;
    if (tcp_.valid()) {
      (void)set_abortive_close(tcp_);
      tcp_.reset();
      ++stats_.tcp_resets;
    }
    if (Status st = connect_tcp(); !st.ok()) return st;
    ++stats_.reconnects;
  }
  if (!tcp_.valid()) {
    if (Status st = connect_tcp(); !st.ok()) return st;
  }
  append_lsp_frame(tcp_buf_, record);
  ++frame_index_;
  ++stats_.lsp_frames_sent;
  return flush_tcp(kTcpFlushBytes);
}

Status FaultyChannel::finish() {
  if (held_valid_) {
    // Swap never completed (stream ended): the held datagram goes out last.
    held_valid_ = false;
    if (Status st = send_datagram(held_); !st.ok()) return st;
  }
  if (Status st = flush_udp(); !st.ok()) return st;
  if (Status st = flush_tcp(0); !st.ok()) return st;
  tcp_.reset();  // orderly FIN
  return Status::ok_status();
}

Result<ReplayStats> replay_capture(const std::vector<syslog::ReceivedLine>& lines,
                                   const std::vector<isis::LspRecord>& records,
                                   const ReplayOptions& options) {
  FaultyChannel channel(options, options.faults);
  if (Status st = channel.open(); !st.ok()) return st.error();

  if (options.faults.tcp_resets > 0 && records.size() > 2) {
    // Precompute the reset frame indices up front so the fault pattern is a
    // pure function of the seed, not of send timing.
    Rng rng(options.faults.seed ^ 0x9e3779b97f4a7c15ULL);
    const std::uint64_t max_index = records.size() - 1;
    const std::uint64_t want =
        std::min<std::uint64_t>(options.faults.tcp_resets, records.size() / 2);
    std::set<std::uint64_t> points;
    while (points.size() < want) {
      points.insert(static_cast<std::uint64_t>(
          rng.uniform_int(1, static_cast<std::int64_t>(max_index))));
    }
    channel.set_reset_points({points.begin(), points.end()});
  }

  const auto start = std::chrono::steady_clock::now();
  std::uint64_t sent = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < lines.size() || j < records.size()) {
    // Merged arrival order, ties syslog-first: the EventMux convention.
    const bool take_syslog =
        j >= records.size() ||
        (i < lines.size() && lines[i].received_at <= records[j].received_at);
    if (take_syslog) {
      if (Status st = channel.send_syslog(lines[i++].line); !st.ok()) {
        return st.error();
      }
    } else {
      if (Status st = channel.send_lsp(records[j++]); !st.ok()) {
        return st.error();
      }
    }
    ++sent;
    if (options.rate > 0 && sent % 32 == 0) {
      const auto target =
          start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(
                          static_cast<double>(sent) / options.rate));
      std::this_thread::sleep_until(target);
    }
  }
  if (Status st = channel.finish(); !st.ok()) return st.error();
  for (int k = 0; k < options.end_marker_repeats; ++k) {
    if (Status st = channel.send_raw_datagram(kReplayEndMarker); !st.ok()) {
      return st.error();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return channel.stats();
}

}  // namespace netfail::net
