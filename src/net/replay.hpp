// net::ReplaySender — stream a captured observation bundle at an ingest
// gateway over real sockets, optionally through a wire-level fault
// injector.
//
// The replay walks the collector's syslog lines and the listener's LSP
// records merged by arrival time (ties syslog-first, the EventMux
// convention) and emits each as the gateway expects it: one UDP datagram
// per syslog line, one length-prefixed TCP frame per LSP record. With
// faults disabled, a replay is a faithful re-observation: the gateway
// reconstructs arrival times from the same rules the batch reader uses, so
// its analysis output matches the batch pipeline over the same bundle.
//
// FaultyChannel models the transports' real failure modes, seeded and
// deterministic:
//   - UDP loss / duplication / adjacent reordering (datagram networks do
//     all three; the paper's syslog loss figures are the motivation);
//   - TCP connection resets at precomputed frame indices — an abortive
//     close (RST) discards in-flight bytes, so the receiver sees a torn
//     or missing tail, exactly like a listener crash truncating a capture.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.hpp"
#include "src/common/rng.hpp"
#include "src/isis/listener.hpp"
#include "src/net/frame.hpp"
#include "src/net/socket.hpp"
#include "src/syslog/collector.hpp"

namespace netfail::net {

struct FaultParams {
  double udp_loss = 0.0;       // P(datagram silently dropped)
  double udp_duplicate = 0.0;  // P(datagram sent twice)
  double udp_reorder = 0.0;    // P(datagram swapped with its successor)
  /// Abortive TCP closes spread across the frame stream (0 = never).
  std::uint32_t tcp_resets = 0;
  std::uint64_t seed = 1;
};

struct ReplayOptions {
  std::string target_host = "127.0.0.1";
  std::uint16_t syslog_port = 0;
  std::uint16_t lsp_port = 0;
  /// Pace the merged stream to this many messages per wall-clock second;
  /// 0 = as fast as the sockets accept.
  double rate = 0.0;
  FaultParams faults;
  /// End-of-replay markers sent after everything else (multiple, because
  /// the marker itself rides UDP).
  int end_marker_repeats = 3;
};

struct ReplayStats {
  std::uint64_t syslog_sent = 0;        // datagrams actually written
  std::uint64_t syslog_lost = 0;        // injector drops (never written)
  std::uint64_t syslog_duplicated = 0;  // extra copies written
  std::uint64_t syslog_reordered = 0;   // adjacent swaps performed
  std::uint64_t lsp_frames_sent = 0;
  std::uint64_t tcp_resets = 0;
  std::uint64_t reconnects = 0;
};

/// The wire between a replay and a gateway: owns both sockets and applies
/// seeded fault injection on the way out. Single-threaded.
class FaultyChannel {
 public:
  FaultyChannel(const ReplayOptions& options, FaultParams faults);

  /// Connect the UDP socket (always) and the TCP socket (on first frame).
  Status open();

  /// Queue one syslog line through the fault model.
  Status send_syslog(const std::string& line);
  /// Queue one LSP record; frames are batched and flushed opportunistically.
  Status send_lsp(const isis::LspRecord& record);

  /// Frame indices (0-based, in send order) at which to abortively reset
  /// the TCP connection *before* sending that frame.
  void set_reset_points(std::vector<std::uint64_t> points);

  /// Flush everything still held back (reorder buffer, TCP write buffer)
  /// and close the TCP connection with an orderly FIN.
  Status finish();

  /// Bypass fault injection entirely (end markers must arrive).
  Status send_raw_datagram(std::string_view payload);

  const ReplayStats& stats() const { return stats_; }

 private:
  Status connect_tcp();
  Status send_datagram(std::string_view payload);
  Status flush_udp();
  Status flush_tcp(std::size_t watermark);

  ReplayOptions options_;
  FaultParams faults_;
  Rng rng_;
  Fd udp_;
  Fd tcp_;
  /// Datagrams are batched into one sendmmsg(2) per ~32 messages: the
  /// syscall, not the copy, is the per-datagram cost that caps replay rate.
  std::vector<std::string> udp_batch_;
  std::vector<std::uint8_t> tcp_buf_;
  std::vector<std::uint64_t> reset_points_;  // sorted ascending
  std::size_t next_reset_ = 0;
  std::uint64_t frame_index_ = 0;
  bool held_valid_ = false;
  std::string held_;  // datagram held back for an adjacent swap
  ReplayStats stats_;
};

/// Replay a bundle (collector lines + listener records) at a gateway.
/// Blocks until fully sent; returns the injector's accounting.
Result<ReplayStats> replay_capture(const std::vector<syslog::ReceivedLine>& lines,
                                   const std::vector<isis::LspRecord>& records,
                                   const ReplayOptions& options);

}  // namespace netfail::net
