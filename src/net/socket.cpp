#include "src/net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace netfail::net {
namespace {

Error errno_error(const std::string& what) {
  return Error{ErrorCode::kInternal, what + ": " + std::strerror(errno)};
}

Result<sockaddr_in> make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return make_error(ErrorCode::kInvalidArgument,
                      "not an IPv4 address: " + host);
  }
  return addr;
}

Result<Fd> make_socket(int type) {
  const int fd = ::socket(AF_INET, type, 0);
  if (fd < 0) return errno_error("socket");
  return Fd(fd);
}

}  // namespace

void Fd::close_fd() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool sockets_available() {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) return false;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  const bool ok =
      ::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0;
  ::close(fd);
  return ok;
}

Result<Fd> udp_bind(const std::string& host, std::uint16_t port) {
  const auto addr = make_addr(host, port);
  if (!addr) return addr.error();
  auto fd = make_socket(SOCK_DGRAM);
  if (!fd) return fd;
  if (::bind(fd->get(), reinterpret_cast<const sockaddr*>(&*addr),
             sizeof(*addr)) != 0) {
    return errno_error("bind udp " + host + ":" + std::to_string(port));
  }
  return fd;
}

Result<Fd> udp_bind_reuseport(const std::string& host, std::uint16_t port) {
#ifndef SO_REUSEPORT
  (void)host;
  (void)port;
  return make_error(ErrorCode::kUnsupported,
                    "SO_REUSEPORT not available on this platform");
#else
  const auto addr = make_addr(host, port);
  if (!addr) return addr.error();
  auto fd = make_socket(SOCK_DGRAM);
  if (!fd) return fd;
  const int one = 1;
  if (::setsockopt(fd->get(), SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) !=
      0) {
    // Runtime detection: an old kernel (or a sandbox seccomp filter) that
    // rejects the option is a supported configuration, not an error the
    // caller should die on.
    return make_error(ErrorCode::kUnsupported,
                      std::string("setsockopt SO_REUSEPORT: ") +
                          std::strerror(errno));
  }
  if (::bind(fd->get(), reinterpret_cast<const sockaddr*>(&*addr),
             sizeof(*addr)) != 0) {
    return errno_error("bind udp/reuseport " + host + ":" +
                       std::to_string(port));
  }
  return fd;
#endif
}

Result<Fd> udp_connect(const std::string& host, std::uint16_t port) {
  const auto addr = make_addr(host, port);
  if (!addr) return addr.error();
  auto fd = make_socket(SOCK_DGRAM);
  if (!fd) return fd;
  if (::connect(fd->get(), reinterpret_cast<const sockaddr*>(&*addr),
                sizeof(*addr)) != 0) {
    return errno_error("connect udp " + host + ":" + std::to_string(port));
  }
  return fd;
}

Result<Fd> tcp_listen(const std::string& host, std::uint16_t port,
                      int backlog) {
  const auto addr = make_addr(host, port);
  if (!addr) return addr.error();
  auto fd = make_socket(SOCK_STREAM);
  if (!fd) return fd;
  const int one = 1;
  (void)::setsockopt(fd->get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd->get(), reinterpret_cast<const sockaddr*>(&*addr),
             sizeof(*addr)) != 0) {
    return errno_error("bind tcp " + host + ":" + std::to_string(port));
  }
  if (::listen(fd->get(), backlog) != 0) {
    return errno_error("listen " + host + ":" + std::to_string(port));
  }
  return fd;
}

Result<Fd> tcp_connect(const std::string& host, std::uint16_t port) {
  const auto addr = make_addr(host, port);
  if (!addr) return addr.error();
  auto fd = make_socket(SOCK_STREAM);
  if (!fd) return fd;
  if (::connect(fd->get(), reinterpret_cast<const sockaddr*>(&*addr),
                sizeof(*addr)) != 0) {
    return errno_error("connect tcp " + host + ":" + std::to_string(port));
  }
  return fd;
}

Result<std::uint16_t> local_port(const Fd& fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return errno_error("getsockname");
  }
  return static_cast<std::uint16_t>(ntohs(addr.sin_port));
}

Status set_nonblocking(const Fd& fd) {
  const int flags = ::fcntl(fd.get(), F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd.get(), F_SETFL, flags | O_NONBLOCK) != 0) {
    return Status(errno_error("fcntl O_NONBLOCK"));
  }
  return Status::ok_status();
}

Status set_recv_buffer(const Fd& fd, int bytes) {
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_RCVBUF, &bytes, sizeof(bytes)) !=
      0) {
    return Status(errno_error("setsockopt SO_RCVBUF"));
  }
  return Status::ok_status();
}

Status set_abortive_close(const Fd& fd) {
  const linger lg{1, 0};
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_LINGER, &lg, sizeof(lg)) != 0) {
    return Status(errno_error("setsockopt SO_LINGER"));
  }
  return Status::ok_status();
}

Status set_nodelay(const Fd& fd) {
  const int one = 1;
  if (::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) !=
      0) {
    return Status(errno_error("setsockopt TCP_NODELAY"));
  }
  return Status::ok_status();
}

}  // namespace netfail::net
