// Thin POSIX socket layer: RAII descriptors plus the handful of loopback
// helpers the gateway and replay sender need. No third-party dependency —
// raw AF_INET sockets, nonblocking where the event loop requires it.
//
// Everything binds/connects IPv4; the gateway binds loopback by default so
// a test or CI sandbox never opens an externally visible port.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "src/common/result.hpp"

namespace netfail::net {

/// Move-only owning file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { close_fd(); }
  Fd(Fd&& o) noexcept : fd_(std::exchange(o.fd_, -1)) {}
  Fd& operator=(Fd&& o) noexcept {
    if (this != &o) {
      close_fd();
      fd_ = std::exchange(o.fd_, -1);
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Release ownership without closing.
  int release() { return std::exchange(fd_, -1); }
  void reset() { close_fd(); }

 private:
  void close_fd();
  int fd_ = -1;
};

/// True when this process may create and bind loopback sockets; a sandbox
/// that forbids them makes the net tests skip instead of fail.
bool sockets_available();

// All helpers return an error with errno detail on failure. `port` 0 asks
// the kernel for an ephemeral port; read it back with local_port().
Result<Fd> udp_bind(const std::string& host, std::uint16_t port);
/// Like udp_bind, but sets SO_REUSEPORT before binding so N sockets can
/// share one port (the kernel hash-distributes datagrams across them).
/// Fails with kUnsupported when the platform lacks SO_REUSEPORT or the
/// kernel refuses it — the sharded gateway then falls back to a single
/// socket with user-space hash dispatch.
Result<Fd> udp_bind_reuseport(const std::string& host, std::uint16_t port);
Result<Fd> udp_connect(const std::string& host, std::uint16_t port);
Result<Fd> tcp_listen(const std::string& host, std::uint16_t port,
                      int backlog = 8);
Result<Fd> tcp_connect(const std::string& host, std::uint16_t port);

Result<std::uint16_t> local_port(const Fd& fd);

Status set_nonblocking(const Fd& fd);
Status set_recv_buffer(const Fd& fd, int bytes);
/// Arrange for close() to send RST instead of FIN (SO_LINGER, timeout 0) —
/// the fault injector's "connection reset" primitive.
Status set_abortive_close(const Fd& fd);
/// Disable Nagle batching; the replay sender paces its own writes.
Status set_nodelay(const Fd& fd);

}  // namespace netfail::net
