// A minimal discrete-event engine.
//
// Events are closures keyed by (time, sequence); sequence numbers make
// same-instant ordering deterministic. Handlers may push further events
// (e.g. a state change schedules a throttled LSP generation, which
// schedules a flooded delivery).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/common/time.hpp"

namespace netfail::sim {

class EventQueue {
 public:
  using Handler = std::function<void(TimePoint)>;

  void push(TimePoint t, Handler handler);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  TimePoint next_time() const { return heap_.top().time; }

  /// Pop and execute the earliest event. Returns false when empty.
  bool step();

  /// Run until the queue drains. Returns number of events processed.
  std::size_t run();

 private:
  struct Event {
    TimePoint time;
    std::uint64_t seq;
    Handler handler;

    bool operator>(const Event& o) const {
      if (time != o.time) return time > o.time;
      return seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace netfail::sim
