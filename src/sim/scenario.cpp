#include "src/sim/scenario.hpp"

namespace netfail::sim {

ScenarioParams cenic_scenario() {
  return ScenarioParams{};  // defaults are the calibrated CENIC scenario
}

ScenarioParams test_scenario(std::uint64_t seed) {
  ScenarioParams p;
  p.seed = seed;
  p.period = TimeRange{TimePoint::from_civil(2010, 10, 20),
                       TimePoint::from_civil(2010, 12, 1)};
  p.topology = TopologyParams{}.scaled_down(6);
  p.topology.seed = seed * 1299709 + 11;
  // Busier links so short tests still see a useful number of events.
  p.core_rate_median = 40;
  p.cpe_rate_median = 60;
  p.blackout_router_count = 2;
  p.listener_gap_count = 1;
  return p;
}

}  // namespace netfail::sim
