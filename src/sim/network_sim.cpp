#include "src/sim/network_sim.hpp"

#include <cmath>
#include <map>
#include <memory>
#include <vector>

#include "src/common/assert.hpp"
#include "src/common/strfmt.hpp"
#include "src/isis/lsp_builder.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/schedule.hpp"
#include "src/syslog/message.hpp"

namespace netfail::sim {
namespace {

/// Everything the simulation tracks per router.
struct RouterSim {
  isis::LspOriginator originator;
  isis::LspThrottle throttle;
  Duration clock_skew;
  unsigned syslog_seq = 0;

  RouterSim(OsiSystemId id, Symbol hostname, Duration min_interval,
            Duration skew)
      : originator(id, hostname.str()), throttle(min_interval),
        clock_skew(skew) {}
};

class Simulation {
 public:
  Simulation(const ScenarioParams& params, Topology topo)
      : params_(params),
        rng_(params.seed),
        result_{std::move(topo), {}, {}, {}, {}, 0, 0, 0},
        channel_(params.channel, rng_.next_u64()) {}

  SimulationResult run();

 private:
  const Topology& topo() const { return result_.topology; }

  // ---- setup ---------------------------------------------------------------
  void setup_routers();
  void setup_listener_gaps();
  void setup_reporter_quality();
  void setup_blackouts();
  void schedule_initial_floods();
  void schedule_gap_resyncs();
  void schedule_failure(const TrueFailure& f);
  void schedule_spurious_ups(
      const std::map<LinkId, IntervalSet>& adjacency_down);

  // ---- event helpers ---------------------------------------------------------
  void isis_change(RouterId router, TimePoint t,
                   std::function<void(isis::LspOriginator&)> mutation);
  void flood_lsp(RouterId router, TimePoint t);
  void send_syslog(RouterId reporter, TimePoint t, syslog::MessageType type,
                   LinkDirection dir, LinkId link, std::string reason);

  Duration jitter(Duration max) {
    return Duration::millis(rng_.uniform_int(0, max.total_millis()));
  }

  const ScenarioParams params_;
  Rng rng_;
  SimulationResult result_;
  syslog::LossyChannel channel_;
  EventQueue queue_;
  std::vector<std::unique_ptr<RouterSim>> routers_;
  std::string syslog_line_;  // reused render buffer
  bool suppress_syslog_ = false;
};

void Simulation::setup_routers() {
  routers_.reserve(topo().router_count());
  for (const Router& r : topo().routers()) {
    const Duration skew = Duration::millis(
        rng_.uniform_int(-params_.clock_skew_max.total_millis(),
                         params_.clock_skew_max.total_millis()));
    routers_.push_back(std::make_unique<RouterSim>(
        r.system_id, r.hostname, params_.lsp_min_interval, skew));
    // Loopback: always advertised, never withdrawn.
    routers_.back()->originator.prefix_up(Ipv4Prefix{r.loopback, 32}, 0);
  }
  // All links start up: both ends advertise the adjacency and the /31.
  for (const Link& l : topo().links()) {
    const Router& ra = topo().router(l.router_a);
    const Router& rb = topo().router(l.router_b);
    routers_[l.router_a.index()]->originator.adjacency_up(rb.system_id, l.metric);
    routers_[l.router_b.index()]->originator.adjacency_up(ra.system_id, l.metric);
    routers_[l.router_a.index()]->originator.prefix_up(l.subnet, l.metric);
    routers_[l.router_b.index()]->originator.prefix_up(l.subnet, l.metric);
  }
}

void Simulation::setup_listener_gaps() {
  IntervalSet gaps;
  for (int i = 0; i < params_.listener_gap_count; ++i) {
    const double width_s = rng_.lognormal(
        std::log(params_.listener_gap_median.seconds_f()),
        params_.listener_gap_sigma);
    const std::int64_t span =
        (params_.period.end - params_.period.begin).total_millis();
    const TimePoint start =
        params_.period.begin + Duration::millis(rng_.uniform_int(
                                   span / 20, span - span / 20));
    gaps.add(TimeRange{start, start + Duration::from_seconds_f(width_s)});
  }
  result_.listener.set_offline_windows(gaps);
  result_.truth.set_listener_gaps(gaps);
}

void Simulation::setup_reporter_quality() {
  for (const Router& r : topo().routers()) {
    if (r.cls == RouterClass::kCpe) {
      channel_.set_extra_loss(r.hostname, params_.cpe_extra_loss);
    }
  }
}

void Simulation::setup_blackouts() {
  // Pick distinct routers for logging blackouts.
  std::vector<std::size_t> indices(topo().router_count());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  rng_.shuffle(indices);
  const int count =
      std::min<int>(params_.blackout_router_count,
                    static_cast<int>(indices.size()));
  for (int i = 0; i < count; ++i) {
    const Router& r = topo().routers()[indices[static_cast<std::size_t>(i)]];
    const double width_s = rng_.lognormal(
        std::log(params_.blackout_median.seconds_f()), params_.blackout_sigma);
    const std::int64_t span =
        (params_.period.end - params_.period.begin).total_millis();
    const TimePoint start =
        params_.period.begin + Duration::millis(rng_.uniform_int(0, span));
    const TimeRange window{start,
                           std::min(start + Duration::from_seconds_f(width_s),
                                    params_.period.end)};
    if (window.empty()) continue;
    channel_.add_blackout(r.hostname, window);
    result_.truth.add_syslog_blackout(r.hostname.str(), window);
  }
}

void Simulation::schedule_initial_floods() {
  for (const Router& r : topo().routers()) {
    const RouterId id = r.id;
    queue_.push(params_.period.begin + jitter(Duration::seconds(60)),
                [this, id](TimePoint t) { flood_lsp(id, t); });
  }
}

void Simulation::schedule_gap_resyncs() {
  for (const TimeRange& gap : result_.truth.listener_gaps().ranges()) {
    for (const Router& r : topo().routers()) {
      const RouterId id = r.id;
      const TimePoint at =
          gap.end + Duration::seconds(1) + jitter(Duration::seconds(90));
      if (at >= params_.period.end) continue;
      queue_.push(at, [this, id](TimePoint t) { flood_lsp(id, t); });
    }
  }
}

void Simulation::isis_change(
    RouterId router, TimePoint t,
    std::function<void(isis::LspOriginator&)> mutation) {
  if (t >= params_.period.end) return;
  queue_.push(t, [this, router, mutation = std::move(mutation)](TimePoint now) {
    RouterSim& rs = *routers_[router.index()];
    mutation(rs.originator);
    if (const auto gen = rs.throttle.on_change(now)) {
      queue_.push(*gen, [this, router](TimePoint gt) {
        routers_[router.index()]->throttle.on_generated(gt);
        flood_lsp(router, gt);
      });
    }
  });
}

void Simulation::flood_lsp(RouterId router, TimePoint t) {
  const isis::Lsp lsp = routers_[router.index()]->originator.build();
  std::vector<std::uint8_t> bytes = lsp.encode();
  const TimePoint arrival =
      t + params_.flood_delay_min +
      jitter(params_.flood_delay_max - params_.flood_delay_min);
  queue_.push(arrival, [this, bytes = std::move(bytes)](TimePoint at) {
    result_.listener.deliver(at, bytes);
  });
}

void Simulation::send_syslog(RouterId reporter, TimePoint t,
                             syslog::MessageType type, LinkDirection dir,
                             LinkId link, std::string reason) {
  if (suppress_syslog_) return;
  if (t >= params_.period.end || t < params_.period.begin) return;
  queue_.push(t, [this, reporter, type, dir, link,
                  reason = std::move(reason)](TimePoint now) {
    RouterSim& rs = *routers_[reporter.index()];
    const Router& r = topo().router(reporter);
    const Link& l = topo().link(link);
    const bool is_a = l.router_a == reporter;

    syslog::Message m;
    m.timestamp = now + rs.clock_skew;
    m.reporter = r.hostname;
    m.dialect = r.os;
    m.type = type;
    m.dir = dir;
    m.interface = topo().interface(is_a ? l.if_a : l.if_b).name;
    if (type == syslog::MessageType::kIsisAdjChange) {
      m.neighbor = topo().router(is_a ? l.router_b : l.router_a).hostname;
      m.reason = reason;
    }
    // Render into the reused buffer: only lines that actually transmit pay
    // for a heap copy (into the delivery closure); drops allocate nothing.
    m.render_to(syslog_line_, ++rs.syslog_seq);
    if (channel_.transmit(r.hostname, now)) {
      const TimePoint arrival =
          now + Duration::millis(1) + jitter(params_.syslog_net_delay_max);
      queue_.push(arrival, [this, line = syslog_line_](TimePoint at) {
        result_.collector.receive(at, line);
      });
    }
  });
}

void Simulation::schedule_failure(const TrueFailure& f) {
  const Link& l = topo().link(f.link);
  const RouterId ends[2] = {l.router_a, l.router_b};
  // Maintenance silence: the whole failure produces no syslog (LSPs still
  // flow); restore the flag when this failure's events are all scheduled.
  suppress_syslog_ = f.syslog_silent;

  using syslog::MessageType;
  switch (f.cls) {
    case FailureClass::kMediaFailure:
    case FailureClass::kMediaBlip: {
      // Physical messages + per-end /31 withdrawal from both ends. Bounces
      // shorter than the carrier-delay never reach the routing layer: the
      // interface logs, but the /31 stays advertised (paper Table 2's
      // media-vs-IP gap).
      const bool routing_notified =
          f.media_down.duration() >= params_.carrier_delay;
      for (const RouterId end : ends) {
        const Duration down_j = jitter(Duration::millis(500));
        const Duration up_j = jitter(Duration::millis(500));
        send_syslog(end, f.media_down.begin + down_j, MessageType::kLinkUpDown,
                    LinkDirection::kDown, f.link, "");
        send_syslog(end, f.media_down.begin + down_j + jitter(Duration::millis(300)),
                    MessageType::kLineProtoUpDown, LinkDirection::kDown, f.link,
                    "");
        send_syslog(end, f.media_down.end + up_j, MessageType::kLinkUpDown,
                    LinkDirection::kUp, f.link, "");
        send_syslog(end, f.media_down.end + up_j + jitter(Duration::millis(300)),
                    MessageType::kLineProtoUpDown, LinkDirection::kUp, f.link, "");
        if (!routing_notified) continue;
        const Ipv4Prefix subnet = l.subnet;
        isis_change(end, f.media_down.begin + down_j,
                    [subnet](isis::LspOriginator& o) { o.prefix_down(subnet); });
        const std::uint32_t metric = l.metric;
        isis_change(end, f.media_down.end + up_j,
                    [subnet, metric](isis::LspOriginator& o) {
                      o.prefix_up(subnet, metric);
                    });
      }
      if (f.cls == FailureClass::kMediaBlip) break;
      [[fallthrough]];
    }
    case FailureClass::kProtocolFailure: {
      // Adjacency messages + TLV-22 withdrawal from both ends.
      const char* down_reason = f.cls == FailureClass::kMediaFailure
                                    ? "interface state down"
                                    : "hold time expired";
      for (const RouterId end : ends) {
        const RouterId peer = topo().link_peer(f.link, end);
        const OsiSystemId peer_id = topo().router(peer).system_id;
        const std::uint32_t metric = l.metric;
        const Duration down_j = jitter(Duration::millis(800));
        const Duration up_j = jitter(Duration::millis(800));
        send_syslog(end, f.adjacency_down.begin + down_j,
                    MessageType::kIsisAdjChange, LinkDirection::kDown, f.link,
                    down_reason);
        send_syslog(end, f.adjacency_down.end + up_j,
                    MessageType::kIsisAdjChange, LinkDirection::kUp, f.link,
                    "new adjacency");
        isis_change(end, f.adjacency_down.begin + down_j,
                    [peer_id, metric](isis::LspOriginator& o) {
                      o.adjacency_down(peer_id, metric);
                    });
        isis_change(end, f.adjacency_down.end + up_j,
                    [peer_id, metric](isis::LspOriginator& o) {
                      o.adjacency_up(peer_id, metric);
                    });
      }
      // Spurious mid-failure "Down" retransmission (sect. 4.3): one end
      // reminds the collector of the ongoing failure, typically shortly
      // after the original report (a delayed re-announcement, not a random
      // point hours in) — which is why 99% of the paper's spurious downs
      // re-report the same failure.
      if (f.adjacency_down.duration() >= params_.spurious_min_duration &&
          rng_.bernoulli(params_.spurious_down_prob)) {
        const RouterId end = ends[rng_.uniform_int(0, 1)];
        const std::int64_t span = f.adjacency_down.duration().total_millis();
        std::int64_t offset_ms;
        if (rng_.bernoulli(params_.spurious_down_early_prob)) {
          offset_ms = static_cast<std::int64_t>(
              rng_.lognormal(std::log(60.0), 1.5) * 1000.0);
        } else {
          offset_ms = rng_.uniform_int(span / 10, span * 9 / 10);
        }
        const TimePoint at =
            f.adjacency_down.begin +
            Duration::millis(std::min(offset_ms, span * 9 / 10));
        send_syslog(end, at, MessageType::kIsisAdjChange, LinkDirection::kDown,
                    f.link, down_reason);
      }
      // Ticket for long outages.
      if (f.ticketed) {
        result_.tickets.file(
            f.link_name, f.adjacency_down,
            strformat("outage on %s (%s)", f.link_name.c_str(),
                      f.cls == FailureClass::kMediaFailure ? "fiber/media"
                                                           : "protocol"));
      }
      break;
    }
    case FailureClass::kPseudoFailure: {
      // Syslog-only: one end logs a reset pair; no LSP is generated.
      const RouterId end = ends[rng_.uniform_int(0, 1)];
      send_syslog(end, f.adjacency_down.begin, MessageType::kIsisAdjChange,
                  LinkDirection::kDown, f.link, "adjacency reset");
      send_syslog(end, f.adjacency_down.end, MessageType::kIsisAdjChange,
                  LinkDirection::kUp, f.link, "new adjacency");
      break;
    }
  }
  suppress_syslog_ = false;
}

void Simulation::schedule_spurious_ups(
    const std::map<LinkId, IntervalSet>& adjacency_down) {
  const double years =
      (params_.period.end - params_.period.begin).seconds_f() /
      (365.25 * 86400.0);
  for (const Link& l : topo().links()) {
    const std::uint32_t n =
        rng_.poisson(params_.spurious_up_rate_per_year * years);
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::int64_t span =
          (params_.period.end - params_.period.begin).total_millis();
      const TimePoint at =
          params_.period.begin + Duration::millis(rng_.uniform_int(0, span - 1));
      // Only meaningful while the link is actually up (the common case).
      const auto it = adjacency_down.find(l.id);
      if (it != adjacency_down.end() && it->second.contains(at)) continue;
      const RouterId end = rng_.bernoulli(0.5) ? l.router_a : l.router_b;
      send_syslog(end, at, syslog::MessageType::kIsisAdjChange,
                  LinkDirection::kUp, l.id, "new adjacency");
    }
  }
}

SimulationResult Simulation::run() {
  setup_routers();
  setup_listener_gaps();
  setup_reporter_quality();
  setup_blackouts();
  schedule_initial_floods();
  schedule_gap_resyncs();

  const std::vector<TrueFailure> schedule =
      generate_schedule(params_, topo(), rng_);
  std::map<LinkId, IntervalSet> adjacency_down;
  for (const TrueFailure& f : schedule) {
    schedule_failure(f);
    if (!f.adjacency_down.empty() && f.cls != FailureClass::kPseudoFailure) {
      adjacency_down[f.link].add(f.adjacency_down);
    }
    result_.truth.add_failure(f);
  }
  schedule_spurious_ups(adjacency_down);

  result_.events_processed = queue_.run();

  // Periodic refresh floods are accounted analytically (DESIGN.md): they
  // carry no state change, so only their count matters (Table 1).
  const Duration online = result_.truth.listener_gaps().complement_within(
      params_.period).total();
  const std::uint64_t per_router = static_cast<std::uint64_t>(
      online.total_millis() / params_.lsp_refresh_interval.total_millis());
  result_.listener.add_virtual_refreshes(per_router * topo().router_count());

  result_.syslog_sent = channel_.sent_count();
  result_.syslog_lost = channel_.lost_count();
  return result_;
}

}  // namespace

SimulationResult run_simulation(const ScenarioParams& params, Topology topo) {
  Simulation sim(params, std::move(topo));
  return sim.run();
}

SimulationResult run_simulation(const ScenarioParams& params) {
  return run_simulation(params, generate_topology(params.topology));
}

}  // namespace netfail::sim
