// Network simulation: replay the ground-truth schedule through the IS-IS
// origination/flooding machinery and the syslog path, producing the two raw
// observation streams the paper compares.
//
// One ground truth, two imperfect views:
//   - IS-IS: state changes mutate per-router LspOriginators; the ISO 10589
//     generation throttle batches rapid changes; encoded LSPs flood to the
//     passive listener (which may be offline). Rapid flapping genuinely
//     disappears between LSP snapshots.
//   - syslog: each router renders Cisco-dialect messages with its own clock
//     skew and ships them through the lossy UDP channel (burst loss +
//     blackouts) to the collector.
// Nothing in the tables is scripted; every disparity emerges from these
// mechanisms.
#pragma once

#include <cstdint>
#include <string>

#include "src/common/rng.hpp"
#include "src/isis/listener.hpp"
#include "src/sim/ground_truth.hpp"
#include "src/sim/scenario.hpp"
#include "src/syslog/channel.hpp"
#include "src/syslog/collector.hpp"
#include "src/tickets/tickets.hpp"
#include "src/topology/topology.hpp"

namespace netfail::sim {

struct SimulationResult {
  Topology topology;
  isis::Listener listener;
  syslog::Collector collector;
  TicketStore tickets;
  GroundTruth truth;

  // Channel accounting for the dataset summary.
  std::size_t syslog_sent = 0;
  std::size_t syslog_lost = 0;
  std::size_t events_processed = 0;
};

/// Build the topology, generate the schedule, and run the full simulation.
SimulationResult run_simulation(const ScenarioParams& params);

/// Same, but over a caller-supplied topology (tests use tiny hand-built
/// networks).
SimulationResult run_simulation(const ScenarioParams& params, Topology topo);

}  // namespace netfail::sim
