// Scenario parameters: every stochastic knob of the synthetic CENIC study.
//
// The defaults are calibrated so the paper's tables re-emerge in shape (see
// EXPERIMENTS.md for the side-by-side numbers). All quantities are plain
// data so tests and ablation benchmarks can perturb one knob at a time.
#pragma once

#include <cstdint>

#include "src/common/time.hpp"
#include "src/syslog/channel.hpp"
#include "src/topology/generator.hpp"

namespace netfail::sim {

/// Parameters of a two-component lognormal mixture used for failure
/// durations: a body of short failures plus a heavy tail of long outages.
struct DurationMixture {
  double body_median_s = 30;   // median of the short component (seconds)
  double body_sigma = 1.0;     // log-std of the short component
  double tail_prob = 0.05;     // probability a failure is a long outage
  double tail_median_s = 3600;
  double tail_sigma = 1.4;
  double min_s = 1.0;          // floor
};

struct ScenarioParams {
  TimeRange period{TimePoint::from_civil(2010, 10, 20),
                   TimePoint::from_civil(2011, 11, 11)};
  std::uint64_t seed = 0xCE41C;

  TopologyParams topology;

  // ---- ground-truth failure processes --------------------------------------
  // Per-link annual arrival rates are lognormal across links (some links are
  // simply much worse than others, which creates Table 5's median-vs-95%
  // spread).
  double core_rate_median = 3.6;   // arrivals / link / year
  double core_rate_sigma = 1.05;
  double cpe_rate_median = 8.5;
  double cpe_rate_sigma = 1.0;

  // An arrival becomes a flapping episode with this probability; the episode
  // has 2 + geometric(extra * link flappiness) failures separated by short
  // gaps. Flappiness is lognormal across links: the worst links owe their
  // failure counts to big episodes, not to frequent isolated failures —
  // which reproduces the paper's bimodal time-between-failures shape
  // (median 0.01-0.2 h vs mean 116-343 h, Table 5).
  double core_flap_episode_prob = 0.115;
  double cpe_flap_episode_prob = 0.18;
  double flap_extra_mean = 3.5;
  double flap_size_sigma = 1.4;
  Duration flap_gap_min = Duration::seconds(2);
  Duration flap_gap_median = Duration::seconds(25);
  double flap_gap_sigma = 1.2;
  /// Failures inside a flap episode are short.
  DurationMixture flap_duration{.body_median_s = 6,
                                .body_sigma = 1.3,
                                .tail_prob = 0.04,
                                .tail_median_s = 2000,
                                .tail_sigma = 1.3,
                                .min_s = 1.0};

  DurationMixture core_duration{.body_median_s = 170,
                                .body_sigma = 1.3,
                                .tail_prob = 0.09,
                                .tail_median_s = 4500,
                                .tail_sigma = 1.5,
                                .min_s = 1.0};
  DurationMixture cpe_duration{.body_median_s = 30,
                               .body_sigma = 1.0,
                               .tail_prob = 0.15,
                               .tail_median_s = 5200,
                               .tail_sigma = 1.3,
                               .min_s = 1.0};

  /// Fraction of adjacency-dropping failures caused by physical media loss
  /// (the rest are protocol-level: the media stays up, IP reachability is
  /// unaffected — paper sect. 3.4's IS-vs-IP asymmetry).
  double media_failure_prob = 0.25;

  /// Separate arrival process for short media blips that do NOT drop the
  /// adjacency (carrier bounce inside the hold time): per link per year.
  double blip_rate_per_year = 13.0;
  double blip_median_s = 1.8;
  double blip_sigma = 0.9;
  double blip_max_s = 20.0;
  /// Cisco carrier-delay: media bounces shorter than this are logged by
  /// syslog (%LINK-3-UPDOWN) but never notify the routing layer, so the /31
  /// stays advertised — one reason physical-media messages match IP
  /// reachability only ~half the time (paper Table 2).
  Duration carrier_delay = Duration::seconds(2);

  /// Links that are a customer's *sole* uplink are quieter than average:
  /// operators dual-home chronically flappy sites, so the remaining
  /// single-homed uplinks are the stable ones. Keeps Table 7's isolating
  /// event count in the paper's regime.
  double sole_uplink_rate_factor = 0.8;
  double sole_uplink_flap_factor = 0.45;

  // ---- correlated site outages ------------------------------------------------
  /// Facility-level failures (power, conduit) that take down all of a
  /// multi-homed customer's uplinks simultaneously — what isolates redundant
  /// sites in Table 7. Per multi-homed customer per year.
  double site_outage_rate_per_year = 0.75;
  Duration site_outage_median = Duration::minutes(22);
  double site_outage_sigma = 1.1;

  // ---- pseudo-failures (syslog-only, invisible to the listener) -------------
  /// After a real failure recovers, the adjacency sometimes resets without a
  /// new LSP (paper sect. 4.3); syslog logs a sub-second Down/Up pair.
  double reset_after_failure_prob = 0.10;
  /// Aborted three-way handshakes during flap episodes, per episode.
  double handshake_abort_prob = 0.25;

  // ---- spurious retransmissions ---------------------------------------------
  /// A router re-announces "Down" mid-failure with this probability for
  /// failures longer than spurious_min_duration (99% of spurious downs in
  /// the paper re-report the current failure).
  double spurious_down_prob = 0.12;
  /// Most spurious downs are prompt re-announcements (lognormal around a
  /// minute after the original); the rest land anywhere in the failure.
  double spurious_down_early_prob = 0.25;
  Duration spurious_min_duration = Duration::seconds(90);
  /// Rare spontaneous "Up" re-announcements, per link per year.
  double spurious_up_rate_per_year = 0.12;

  // ---- IS-IS timing ----------------------------------------------------------
  Duration lsp_min_interval = Duration::seconds(5);   // generation throttle
  Duration lsp_refresh_interval = Duration::minutes(12);
  Duration flood_delay_min = Duration::millis(40);
  Duration flood_delay_max = Duration::millis(400);
  Duration adjacency_detect_max = Duration::millis(1500);
  /// Three-way handshake time after media restoration.
  Duration handshake_min = Duration::seconds(2);
  Duration handshake_max = Duration::seconds(10);

  // ---- syslog path ------------------------------------------------------------
  // Loss is moderate for isolated messages but *correlated* in bursts: the
  // paper's Table 6 (only ~460 double messages in 13 months) implies few
  // interleaved received/lost patterns, while Table 3 (15-18% of transitions
  // fully unreported, two thirds during flapping) implies whole runs of
  // messages vanishing together — queue overflow, not independent drops.
  syslog::ChannelParams channel{.base_loss = 0.12,
                                .run_onset_per_message = 0.05,
                                .max_run_onset = 0.9,
                                .burst_window = Duration::seconds(20),
                                .run_mean = Duration::seconds(60)};
  /// Extra independent message loss for CPE routers (small boxes, busy
  /// CPUs, long last-mile paths to the collector). Skews misses toward the
  /// CPE links that carry most downtime — part of why the paper's syslog
  /// undercounts downtime by ~25%.
  double cpe_extra_loss = 0.10;
  Duration syslog_net_delay_max = Duration::millis(80);
  /// Static per-router clock skew bound (timestamps vs true time).
  Duration clock_skew_max = Duration::seconds(2);
  /// Routers that suffer long logging blackouts (source of the multi-day
  /// false failures of sect. 4.2).
  int blackout_router_count = 10;
  Duration blackout_median = Duration::days(4);
  double blackout_sigma = 0.8;

  // ---- listener ---------------------------------------------------------------
  int listener_gap_count = 3;
  Duration listener_gap_median = Duration::hours(20);
  double listener_gap_sigma = 0.7;

  // ---- tickets ----------------------------------------------------------------
  /// Outages at least this long are reliably documented by operators.
  Duration ticket_threshold = Duration::hours(12);
  /// Fraction of ticketed (maintenance-scale) outages during which the
  /// affected routers emit no syslog at all — depowered hardware and
  /// maintenance procedures do not log, but the IGP still records the
  /// withdrawal. Drives the paper's IS-IS-only downtime share.
  double maintenance_silent_prob = 0.25;
};

/// The calibrated 13-month CENIC-scale scenario used by all benchmarks.
ScenarioParams cenic_scenario();

/// A small, fast scenario for unit/integration tests (a few weeks, scaled
/// topology).
ScenarioParams test_scenario(std::uint64_t seed = 7);

}  // namespace netfail::sim
