// Ground truth: what actually happened to every link.
//
// The analysis pipeline never reads this — it only sees the two imperfect
// observation streams. Ground truth exists so tests can verify that the
// IS-IS reconstruction tracks reality (the paper's premise) and so the
// dataset-summary benchmark can report true downtime for context.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/common/ids.hpp"
#include "src/common/interval_set.hpp"
#include "src/common/time.hpp"

namespace netfail::sim {

enum class FailureClass {
  kMediaFailure,     // fiber/optics/device: media and adjacency both drop
  kProtocolFailure,  // adjacency drops, media stays up
  kMediaBlip,        // media bounce inside the hold time: adjacency survives
  kPseudoFailure,    // syslog-only adjacency reset / aborted handshake
};

inline const char* failure_class_name(FailureClass c) {
  switch (c) {
    case FailureClass::kMediaFailure: return "media";
    case FailureClass::kProtocolFailure: return "protocol";
    case FailureClass::kMediaBlip: return "blip";
    case FailureClass::kPseudoFailure: return "pseudo";
  }
  return "?";
}

struct TrueFailure {
  LinkId link;  // topology link id
  std::string link_name;
  FailureClass cls = FailureClass::kProtocolFailure;
  TimeRange media_down;      // empty unless media was involved
  TimeRange adjacency_down;  // empty for blips and pseudo-failures
  bool in_flap_episode = false;
  bool ticketed = false;
  /// Maintenance silence: the routers were being depowered / reconfigured,
  /// so no syslog escapes for this failure at all (the LSP flood is
  /// unaffected — neighbors keep advertising the withdrawal). A chunk of
  /// the paper's downtime is IS-IS-only for exactly this kind of reason.
  bool syslog_silent = false;
};

class GroundTruth {
 public:
  void add_failure(TrueFailure f) { failures_.push_back(std::move(f)); }

  const std::vector<TrueFailure>& failures() const { return failures_; }

  /// True adjacency downtime per link (media + protocol failures).
  std::map<std::string, IntervalSet> adjacency_downtime_by_link() const;
  Duration total_adjacency_downtime() const;

  std::size_t count(FailureClass cls) const;
  std::size_t flap_failure_count() const;

  void set_listener_gaps(IntervalSet gaps) { listener_gaps_ = std::move(gaps); }
  const IntervalSet& listener_gaps() const { return listener_gaps_; }

  void add_syslog_blackout(std::string router, TimeRange window) {
    syslog_blackouts_[std::move(router)].add(window);
  }
  const std::map<std::string, IntervalSet>& syslog_blackouts() const {
    return syslog_blackouts_;
  }

 private:
  std::vector<TrueFailure> failures_;
  IntervalSet listener_gaps_;
  std::map<std::string, IntervalSet> syslog_blackouts_;
};

}  // namespace netfail::sim
