#include "src/sim/engine.hpp"

#include <utility>

#include "src/common/assert.hpp"

namespace netfail::sim {

void EventQueue::push(TimePoint t, Handler handler) {
  NETFAIL_ASSERT(handler != nullptr, "null event handler");
  heap_.push(Event{t, next_seq_++, std::move(handler)});
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top returns const&; move out via const_cast is UB-free
  // here because we pop immediately — but keep it simple and copy the
  // closure (events are small).
  Event e = heap_.top();
  heap_.pop();
  e.handler(e.time);
  return true;
}

std::size_t EventQueue::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

}  // namespace netfail::sim
