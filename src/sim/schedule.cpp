#include "src/sim/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "src/common/assert.hpp"

namespace netfail::sim {
namespace {

constexpr double kSecondsPerYear = 365.25 * 86400.0;

/// Per-link failure arrival rate, lognormal across links.
double sample_annual_rate(double median, double sigma, Rng& rng) {
  return rng.lognormal(std::log(median), sigma);
}

}  // namespace

double sample_duration_s(const DurationMixture& mix, Rng& rng) {
  const bool tail = rng.bernoulli(mix.tail_prob);
  const double median = tail ? mix.tail_median_s : mix.body_median_s;
  const double sigma = tail ? mix.tail_sigma : mix.body_sigma;
  return std::max(mix.min_s, rng.lognormal(std::log(median), sigma));
}

std::vector<TrueFailure> generate_schedule(const ScenarioParams& params,
                                           const Topology& topo, Rng& rng) {
  std::vector<TrueFailure> out;
  const TimeRange period = params.period;
  // Per-link occupancy across all generators (a link must recover before it
  // can fail again).
  std::map<LinkId, IntervalSet> busy_map;

  // Links that are the only uplink of some customer (see
  // sole_uplink_rate_factor).
  std::set<LinkId> sole_uplinks;
  for (const Customer& customer : topo.customers()) {
    std::vector<LinkId> uplinks;
    for (const RouterId router : customer.routers) {
      for (const auto& [peer, link] : topo.adjacency(router)) {
        if (topo.router(peer).cls == RouterClass::kCore) uplinks.push_back(link);
      }
    }
    if (uplinks.size() == 1) sole_uplinks.insert(uplinks.front());
  }

  for (const Link& link : topo.links()) {
    Rng link_rng = rng.fork();
    const bool core = link.cls == RouterClass::kCore;
    const std::string name = topo.link_name(link.id);
    const DurationMixture& mix = core ? params.core_duration : params.cpe_duration;

    const bool sole = sole_uplinks.contains(link.id);
    const double rate = sample_annual_rate(
                            core ? params.core_rate_median : params.cpe_rate_median,
                            core ? params.core_rate_sigma : params.cpe_rate_sigma,
                            link_rng) *
                        (sole ? params.sole_uplink_rate_factor : 1.0);
    const double mean_gap_s = kSecondsPerYear / rate;
    // Per-link flappiness: scales episode sizes, carrying the heavy upper
    // tail of failures-per-link.
    const double flappiness =
        link_rng.lognormal(0.0, params.flap_size_sigma) *
        (sole ? params.sole_uplink_flap_factor : 1.0);

    IntervalSet& busy = busy_map[link.id];

    // One adjacency-dropping failure starting at `t`; returns the time at
    // which the link is fully recovered.
    auto emit_failure = [&](TimePoint t, double duration_s, bool in_flap)
        -> TimePoint {
      TrueFailure f;
      f.link = link.id;
      f.link_name = name;
      f.in_flap_episode = in_flap;
      const bool media = link_rng.bernoulli(params.media_failure_prob);
      const Duration dur = Duration::from_seconds_f(duration_s);
      if (media) {
        f.cls = FailureClass::kMediaFailure;
        f.media_down = TimeRange{t, t + dur};
        const Duration detect = link_rng.uniform_duration(
            Duration::millis(0), params.adjacency_detect_max);
        const Duration handshake = link_rng.uniform_duration(
            params.handshake_min, params.handshake_max);
        f.adjacency_down = TimeRange{t + detect, t + dur + handshake};
      } else {
        f.cls = FailureClass::kProtocolFailure;
        f.adjacency_down = TimeRange{t, t + dur};
      }
      TimePoint recovered = f.adjacency_down.end;
      f.ticketed = f.adjacency_down.duration() >= params.ticket_threshold;
      f.syslog_silent =
          f.ticketed && link_rng.bernoulli(params.maintenance_silent_prob);
      busy.add(TimeRange{t, recovered});
      out.push_back(f);

      // Post-recovery adjacency reset: a syslog-only pseudo-failure.
      if (link_rng.bernoulli(params.reset_after_failure_prob)) {
        TrueFailure reset;
        reset.link = link.id;
        reset.link_name = name;
        reset.cls = FailureClass::kPseudoFailure;
        const TimePoint rt =
            recovered + Duration::from_seconds_f(link_rng.uniform_real(0.5, 3.0));
        reset.adjacency_down =
            TimeRange{rt, rt + Duration::from_seconds_f(
                              link_rng.uniform_real(0.2, 1.0))};
        reset.in_flap_episode = in_flap;
        recovered = reset.adjacency_down.end;
        busy.add(reset.adjacency_down);
        out.push_back(reset);
      }
      return recovered;
    };

    // ---- main arrival process -------------------------------------------------
    TimePoint cursor =
        period.begin + Duration::from_seconds_f(link_rng.exponential(mean_gap_s));
    while (cursor < period.end) {
      if (link_rng.bernoulli(core ? params.core_flap_episode_prob
                                  : params.cpe_flap_episode_prob)) {
        // Flapping episode: a burst of short failures with short gaps.
        const double mean_extra = params.flap_extra_mean * flappiness;
        const int extra = static_cast<int>(
            link_rng.geometric(1.0 / (1.0 + mean_extra)));
        const int count = 2 + extra;
        TimePoint t = cursor;
        for (int k = 0; k < count && t < period.end; ++k) {
          const double dur_s = sample_duration_s(params.flap_duration, link_rng);
          t = emit_failure(t, dur_s, /*in_flap=*/true);
          const double gap_s = std::max(
              params.flap_gap_min.seconds_f(),
              link_rng.lognormal(std::log(params.flap_gap_median.seconds_f()),
                                 params.flap_gap_sigma));
          t += Duration::from_seconds_f(std::min(gap_s, 590.0));
        }
        cursor = t;
      } else {
        cursor = emit_failure(cursor, sample_duration_s(mix, link_rng),
                              /*in_flap=*/false);
      }
      // Aborted three-way handshake attempts cluster around flap episodes;
      // handled below by tagging pseudo-failures onto episodes.
      cursor += Duration::from_seconds_f(link_rng.exponential(mean_gap_s)) +
                Duration::seconds(5);
    }

    // ---- handshake aborts on flap episodes -------------------------------------
    // Walk the failures just added for this link; after a flap failure, with
    // some probability insert an aborted-handshake pseudo-failure.
    const std::size_t link_begin = out.size();
    (void)link_begin;  // (aborts are appended below, scanning is bounded)
    std::vector<TrueFailure> aborts;
    for (const TrueFailure& f : out) {
      if (f.link != link.id || !f.in_flap_episode ||
          f.cls == FailureClass::kPseudoFailure) {
        continue;
      }
      if (!link_rng.bernoulli(params.handshake_abort_prob)) continue;
      TrueFailure abort;
      abort.link = link.id;
      abort.link_name = name;
      abort.cls = FailureClass::kPseudoFailure;
      abort.in_flap_episode = true;
      const TimePoint at = f.adjacency_down.end +
                           Duration::from_seconds_f(link_rng.uniform_real(1.0, 8.0));
      abort.adjacency_down =
          TimeRange{at, at + Duration::from_seconds_f(
                            link_rng.uniform_real(0.1, 0.9))};
      if (!busy.overlaps(abort.adjacency_down) &&
          abort.adjacency_down.end < period.end) {
        busy.add(abort.adjacency_down);
        aborts.push_back(abort);
      }
    }
    out.insert(out.end(), aborts.begin(), aborts.end());

    // ---- media blips ------------------------------------------------------------
    const double blip_gap_s = kSecondsPerYear / params.blip_rate_per_year;
    TimePoint bt =
        period.begin + Duration::from_seconds_f(link_rng.exponential(blip_gap_s));
    while (bt < period.end) {
      const double dur_s =
          std::min(params.blip_max_s,
                   link_rng.lognormal(std::log(params.blip_median_s),
                                      params.blip_sigma));
      TrueFailure blip;
      blip.link = link.id;
      blip.link_name = name;
      blip.cls = FailureClass::kMediaBlip;
      blip.media_down = TimeRange{bt, bt + Duration::from_seconds_f(dur_s)};
      if (!busy.overlaps(blip.media_down) && blip.media_down.end < period.end) {
        busy.add(blip.media_down);
        out.push_back(blip);
      }
      bt += Duration::from_seconds_f(link_rng.exponential(blip_gap_s));
    }
  }

  // ---- correlated site outages -------------------------------------------------
  // A power or facility failure on customer premises takes down *all* of a
  // multi-homed site's uplinks at once — the mechanism that lets isolation
  // happen to redundant customers (paper sect. 4.4).
  if (params.site_outage_rate_per_year > 0) {
    for (const Customer& customer : topo.customers()) {
      // Collect the site's uplinks (CPE-router links toward the core).
      std::vector<const Link*> uplinks;
      for (const RouterId router : customer.routers) {
        for (const auto& [peer, link] : topo.adjacency(router)) {
          if (topo.router(peer).cls == RouterClass::kCore) {
            uplinks.push_back(&topo.link(link));
          }
        }
      }
      if (uplinks.size() < 2) continue;  // single links fail plenty already

      Rng site_rng = rng.fork();
      const double gap_s =
          kSecondsPerYear / params.site_outage_rate_per_year;
      TimePoint t =
          period.begin + Duration::from_seconds_f(site_rng.exponential(gap_s));
      while (t < period.end) {
        const double dur_s = site_rng.lognormal(
            std::log(params.site_outage_median.seconds_f()),
            params.site_outage_sigma);
        const TimeRange outage{t, t + Duration::from_seconds_f(dur_s)};
        // Skip the whole outage if any uplink is already busy around it.
        const TimeRange padded{outage.begin - Duration::seconds(10),
                               outage.end + Duration::seconds(60)};
        bool clear = outage.end < period.end;
        for (const Link* l : uplinks) {
          if (busy_map[l->id].overlaps(padded)) clear = false;
        }
        if (clear) {
          for (const Link* l : uplinks) {
            TrueFailure f;
            f.link = l->id;
            f.link_name = topo.link_name(l->id);
            f.cls = FailureClass::kMediaFailure;
            const Duration jit =
                Duration::millis(site_rng.uniform_int(0, 1200));
            f.media_down = TimeRange{outage.begin + jit, outage.end + jit};
            const Duration detect = site_rng.uniform_duration(
                Duration::millis(0), params.adjacency_detect_max);
            const Duration handshake = site_rng.uniform_duration(
                params.handshake_min, params.handshake_max);
            f.adjacency_down = TimeRange{f.media_down.begin + detect,
                                         f.media_down.end + handshake};
            f.ticketed =
                f.adjacency_down.duration() >= params.ticket_threshold;
            busy_map[l->id].add(
                TimeRange{f.media_down.begin, f.adjacency_down.end});
            out.push_back(std::move(f));
          }
        }
        t += Duration::from_seconds_f(site_rng.exponential(gap_s));
      }
    }
  }

  // Clamp everything into the study period and drop empty leftovers.
  std::erase_if(out, [&](const TrueFailure& f) {
    const TimeRange& r =
        f.cls == FailureClass::kMediaBlip ? f.media_down : f.adjacency_down;
    return r.begin >= period.end;
  });
  for (TrueFailure& f : out) {
    auto clamp = [&](TimeRange& r) {
      if (r.empty()) return;
      r.begin = std::max(r.begin, period.begin);
      r.end = std::min(r.end, period.end);
    };
    clamp(f.media_down);
    clamp(f.adjacency_down);
  }

  std::sort(out.begin(), out.end(), [](const TrueFailure& a, const TrueFailure& b) {
    const TimePoint ta = a.media_down.empty() ? a.adjacency_down.begin
                                              : a.media_down.begin;
    const TimePoint tb = b.media_down.empty() ? b.adjacency_down.begin
                                              : b.media_down.begin;
    return ta < tb;
  });
  return out;
}

}  // namespace netfail::sim
