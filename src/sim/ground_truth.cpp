#include "src/sim/ground_truth.hpp"

#include <algorithm>

namespace netfail::sim {

std::map<std::string, IntervalSet> GroundTruth::adjacency_downtime_by_link()
    const {
  std::map<std::string, IntervalSet> out;
  for (const TrueFailure& f : failures_) {
    if (!f.adjacency_down.empty()) {
      out[f.link_name].add(f.adjacency_down);
    }
  }
  return out;
}

Duration GroundTruth::total_adjacency_downtime() const {
  Duration total;
  for (const auto& [name, set] : adjacency_downtime_by_link()) {
    total += set.total();
  }
  return total;
}

std::size_t GroundTruth::count(FailureClass cls) const {
  return static_cast<std::size_t>(
      std::count_if(failures_.begin(), failures_.end(),
                    [cls](const TrueFailure& f) { return f.cls == cls; }));
}

std::size_t GroundTruth::flap_failure_count() const {
  return static_cast<std::size_t>(
      std::count_if(failures_.begin(), failures_.end(),
                    [](const TrueFailure& f) { return f.in_flap_episode; }));
}

}  // namespace netfail::sim
