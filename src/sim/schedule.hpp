// Failure schedule generation: turns ScenarioParams + a topology into the
// ground-truth list of failures, blips and pseudo-failures for the whole
// study period.
//
// Every stochastic choice draws from one seeded Rng, so the schedule — and
// therefore every downstream table — is identical across runs and machines.
#pragma once

#include <vector>

#include "src/common/rng.hpp"
#include "src/sim/ground_truth.hpp"
#include "src/sim/scenario.hpp"
#include "src/topology/topology.hpp"

namespace netfail::sim {

/// Generate all ground-truth failures. Output is sorted by event start time;
/// per-link intervals never overlap (a link must recover before failing
/// again).
std::vector<TrueFailure> generate_schedule(const ScenarioParams& params,
                                           const Topology& topo, Rng& rng);

/// Sample a duration (seconds) from a two-component lognormal mixture.
double sample_duration_s(const DurationMixture& mix, Rng& rng);

}  // namespace netfail::sim
